// Deterministic parallel run-pool.
//
// Executes a batch of independent work items on a fixed set of worker
// threads over a chunked work-stealing queue, with three guarantees the
// repo's experiments need:
//
//  * byte-identical-to-serial results: every item's outcome depends only
//    on the item (cells build their own graph/engine/adversary and derive
//    their RNG from the cell seed — no shared mutable state), and results
//    are returned in submission order, so CSV/JSON outputs do not change
//    with --jobs;
//  * containment: an exception escaping one item becomes that item's error
//    string; the other items still complete;
//  * deterministic observability: per-worker MetricRegistry instances are
//    merged after the barrier with commutative operations (counters add,
//    gauges max), so the pool's own metrics are also jobs-invariant.
//
// Parallelism is strictly *across* runs.  A single step's two-substep
// order (engine.hpp header contract) is never threaded.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "aqt/obs/registry.hpp"
#include "aqt/runner/run_spec.hpp"

namespace aqt {

/// Resolves a --jobs value: 0 means all hardware threads (at least 1).
[[nodiscard]] unsigned resolve_jobs(unsigned jobs);

/// Runs body(0..count-1), each index exactly once, on `jobs` workers
/// (resolved via resolve_jobs).  Returns one string per index: empty when
/// body(i) returned normally, the exception's what() when it threw.  The
/// call itself only throws on setup errors (never mid-batch).  `body` must
/// be safe to call concurrently for distinct indices.
std::vector<std::string> parallel_for_each(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t)>& body);

/// A pool batch's outcome: per-spec results in submission order plus the
/// pool's own merged metric snapshot (aqt_runner_* families).
struct RunPoolReport {
  std::vector<RunResult> results;
  /// Merged per-worker aqt_runner_* families.  Deliberately contains only
  /// jobs-invariant values (no worker ids, no wall-clock timings), so its
  /// JSON export is byte-identical across --jobs settings.
  obs::MetricRegistry metrics;
  unsigned jobs_used = 1;
};

/// Executes every spec through execute_run on `jobs` workers.  Results
/// land in submission order; a failing cell yields an error RunResult.
RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs);

/// Convenience when the pool metrics are not needed.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned jobs);

}  // namespace aqt
