// Deterministic parallel run-pool.
//
// Executes a batch of independent work items on a fixed set of worker
// threads over a chunked work-stealing queue, with three guarantees the
// repo's experiments need:
//
//  * byte-identical-to-serial results: every item's outcome depends only
//    on the item (cells build their own graph/engine/adversary and derive
//    their RNG from the cell seed — no shared mutable state), and results
//    are returned in submission order, so CSV/JSON outputs do not change
//    with --jobs;
//  * containment: an exception escaping one item becomes that item's error
//    string; the other items still complete;
//  * deterministic observability: per-worker MetricRegistry instances are
//    merged after the barrier with commutative operations (counters add,
//    gauges max), so the pool's own metrics are also jobs-invariant.
//
// Parallelism is strictly *across* runs.  A single step's two-substep
// order (engine.hpp header contract) is never threaded.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "aqt/obs/registry.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/util/histogram.hpp"

namespace aqt::obs {
class TraceEventLog;
}

namespace aqt {

/// Resolves a --jobs value: 0 means all hardware threads (at least 1).
[[nodiscard]] unsigned resolve_jobs(unsigned jobs);

/// Runs body(0..count-1), each index exactly once, on `jobs` workers
/// (resolved via resolve_jobs).  Returns one string per index: empty when
/// body(i) returned normally, the exception's what() when it threw.  The
/// call itself only throws on setup errors (never mid-batch).  `body` must
/// be safe to call concurrently for distinct indices.
std::vector<std::string> parallel_for_each(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t)>& body);

/// One worker's execution profile for a pool batch — the telemetry that
/// turns a flat parallel speedup from a mystery into a diagnosis.  In the
/// chunked shared-index queue a "steal" is a successful chunk grab and a
/// "steal failure" is a grab that found the queue empty (each worker fails
/// exactly once, at exit, unless it never got a chunk at all).
struct PoolWorkerStats {
  std::uint64_t cells = 0;           ///< Cells this worker executed.
  std::uint64_t steals = 0;          ///< Chunks grabbed.
  std::uint64_t steal_failures = 0;  ///< Empty grabs (terminal).
  std::uint64_t busy_nanos = 0;      ///< Wall time inside cell bodies.
  std::uint64_t idle_nanos = 0;      ///< Worker wall minus busy.
  Histogram chunk_nanos;             ///< Per-chunk wall-time distribution.
};

/// Whole-batch telemetry: one entry per worker (index = worker id) plus
/// the batch's dispatch wall time.  Values are wall-clock and therefore
/// NOT jobs-invariant — they live beside RunPoolReport::metrics, never
/// inside it, so the deterministic snapshot stays byte-identical.
struct PoolTelemetry {
  std::vector<PoolWorkerStats> workers;
  std::uint64_t wall_nanos = 0;
};

/// Optional per-batch observability hooks.
struct PoolOptions {
  /// When set, every worker logs one span per executed cell onto its own
  /// thread track and the spans are merged (in worker-id order) into this
  /// log after the barrier.  Borrowed; must outlive the run_pool call.
  obs::TraceEventLog* trace = nullptr;
};

/// A pool batch's outcome: per-spec results in submission order plus the
/// pool's own merged metric snapshot (aqt_runner_* families).
struct RunPoolReport {
  std::vector<RunResult> results;
  /// Merged per-worker aqt_runner_* families.  Deliberately contains only
  /// jobs-invariant values (no worker ids, no wall-clock timings), so its
  /// JSON export is byte-identical across --jobs settings.
  obs::MetricRegistry metrics;
  /// Wall-clock per-worker profile (see PoolTelemetry).  Kept out of
  /// `metrics`; export explicitly via collect_pool_worker_metrics.
  PoolTelemetry telemetry;
  unsigned jobs_used = 1;
};

/// Registers the telemetry as aqt_pool_worker_* families (label key
/// "worker", cells in worker-id order, so registration order — and thus
/// export order — is deterministic):
///   aqt_pool_worker_cells_total, aqt_pool_worker_steals_total,
///   aqt_pool_worker_steal_failures_total, aqt_pool_worker_busy_seconds,
///   aqt_pool_worker_idle_seconds, aqt_pool_worker_chunk_nanos (histogram)
/// plus the unlabeled aqt_pool_wall_seconds and aqt_pool_workers gauges.
void collect_pool_worker_metrics(const PoolTelemetry& telemetry,
                                 obs::MetricRegistry& registry);

/// Executes every spec through execute_run on `jobs` workers.  Results
/// land in submission order; a failing cell yields an error RunResult.
RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs);

/// As above with per-batch observability hooks (worker cell spans).
RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs,
                       const PoolOptions& options);

/// Convenience when the pool metrics are not needed.
std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned jobs);

}  // namespace aqt
