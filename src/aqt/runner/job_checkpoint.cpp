#include "aqt/runner/job_checkpoint.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

std::string hash_hex(std::uint64_t h) {
  std::ostringstream os;
  os << std::hex;
  os.width(16);
  os.fill('0');
  os << h;
  return os.str();
}

template <typename Int>
Int parse_num(const std::string& tok, const std::string& where,
              const char* what, int base = 10) {
  Int value{};
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value, base);
  AQT_REQUIRE(ec == std::errc() && ptr == tok.data() + tok.size(),
              "" << where << ": '" << tok << "' is not a valid " << what);
  return value;
}

/// Reads one line and splits "<key> <rest...>"; requires the exact key.
std::string keyed_line(std::istream& is, const std::string& where,
                       const char* key) {
  std::string raw;
  AQT_REQUIRE(std::getline(is, raw),
              "" << where << ": truncated job checkpoint (expected '" << key
                   << "' line)");
  const std::size_t sp = raw.find(' ');
  const std::string k = sp == std::string::npos ? raw : raw.substr(0, sp);
  AQT_REQUIRE(k == key, "" << where << ": expected '" << key
                             << "' line, got '" << k << "'");
  return sp == std::string::npos ? std::string() : raw.substr(sp + 1);
}

}  // namespace

void save_job_checkpoint(const JobCheckpoint& cp, std::ostream& os) {
  os << "aqt-job-checkpoint " << kJobCheckpointVersion << '\n';
  os << "name " << (cp.name.empty() ? "-" : cp.name) << '\n';
  os << "protocol " << cp.protocol << '\n';
  os << "topology " << (cp.topology.empty() ? "-" : cp.topology) << '\n';
  os << "seed " << cp.seed << '\n';
  os << "steps-done " << cp.steps_done << '\n';
  os << "trace " << (cp.has_trace ? 1 : 0) << ' '
     << hash_hex(cp.trace.hash_state) << ' ' << cp.trace.last_step << '\n';
  os << "engine\n";
  os << cp.engine_state;
  os.flush();
}

void save_job_checkpoint_file(const JobCheckpoint& cp,
                              const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  AQT_REQUIRE(os.good(), "cannot open job checkpoint '" << path
                                                        << "' for writing");
  save_job_checkpoint(cp, os);
  AQT_REQUIRE(os.good(), "write to job checkpoint '" << path << "' failed");
}

JobCheckpoint load_job_checkpoint(std::istream& is,
                                  const std::string& where) {
  JobCheckpoint cp;
  {
    const std::string v = keyed_line(is, where, "aqt-job-checkpoint");
    const int version = parse_num<int>(v, where, "version");
    AQT_REQUIRE(version == kJobCheckpointVersion,
                "" << where << ": unsupported job-checkpoint version "
                     << version << " (this build reads version "
                     << kJobCheckpointVersion << ")");
  }
  cp.name = keyed_line(is, where, "name");
  if (cp.name == "-") cp.name.clear();
  cp.protocol = keyed_line(is, where, "protocol");
  AQT_REQUIRE(!cp.protocol.empty(), "" << where << ": empty protocol");
  cp.topology = keyed_line(is, where, "topology");
  if (cp.topology == "-") cp.topology.clear();
  cp.seed = parse_num<std::uint64_t>(keyed_line(is, where, "seed"), where,
                                     "seed");
  cp.steps_done = parse_num<Time>(keyed_line(is, where, "steps-done"), where,
                                  "step count");
  {
    const std::string t = keyed_line(is, where, "trace");
    std::istringstream ts(t);
    std::string flag;
    std::string hex;
    std::string last;
    AQT_REQUIRE(ts >> flag >> hex >> last,
                "" << where << ": expected 'trace <0|1> <hex> <step>'");
    AQT_REQUIRE(flag == "0" || flag == "1",
                "" << where << ": trace flag must be 0 or 1");
    cp.has_trace = flag == "1";
    cp.trace.hash_state =
        parse_num<std::uint64_t>(hex, where, "trace hash state", 16);
    cp.trace.last_step = parse_num<Time>(last, where, "trace step");
  }
  {
    const std::string rest = keyed_line(is, where, "engine");
    AQT_REQUIRE(rest.empty(),
                "" << where << ": 'engine' line takes no operand");
  }
  std::ostringstream engine;
  engine << is.rdbuf();
  cp.engine_state = engine.str();
  AQT_REQUIRE(!cp.engine_state.empty(),
              "" << where << ": missing embedded engine checkpoint");
  return cp;
}

JobCheckpoint load_job_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  AQT_REQUIRE(is.good(), "cannot open job checkpoint '" << path << "'");
  return load_job_checkpoint(is, path);
}

}  // namespace aqt
