#include "aqt/runner/run_spec.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

/// Swallows bytes: trace-hash runs only need the streaming content hash,
/// so the trace itself goes into /dev/null-equivalent storage.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

void run_cell(const RunSpec& spec, RunResult& result) {
  AQT_REQUIRE(spec.topology.build != nullptr,
              "RunSpec '" << result.name << "' has no topology recipe");
  AQT_REQUIRE(spec.steps >= 1,
              "RunSpec '" << result.name << "' needs steps >= 1");
  EngineConfig ec = spec.engine;
  AQT_REQUIRE(ec.sinks.trace == nullptr && ec.sinks.profile == nullptr &&
                  ec.sinks.events == nullptr && ec.sinks.samples == nullptr &&
                  ec.record_trace == nullptr && ec.profile == nullptr &&
                  ec.record_events == nullptr,
              "RunSpec carries value configuration only; observer sinks are "
              "created per cell by the runner");

  const Graph graph = spec.topology.build();
  // The adversary factory receives spec.seed verbatim; the protocol gets a
  // mixed stream so a stateful protocol (RANDOM) never shares the
  // adversary's RNG sequence.
  auto protocol = make_protocol(spec.protocol, mix_seed(spec.seed, 1));

  const bool want_audit = spec.audit_w.has_value() || spec.audit_r.has_value();
  AQT_REQUIRE(!spec.audit_w.has_value() || spec.audit_r.has_value(),
              "RunSpec audit_w needs audit_r");
  if (want_audit) ec.audit_rates = true;
  if (spec.artifacts.growth && ec.series_stride == 0)
    ec.series_stride = std::max<Time>(1, spec.steps / 512);

  NullBuf null_buf;
  std::ostream null_os(&null_buf);
  std::optional<RunTraceWriter> writer;
  if (spec.artifacts.trace_hash) {
    RunTraceMeta meta;
    meta.protocol = spec.protocol;
    meta.seed = spec.seed;
    if (spec.audit_w.has_value()) {
      meta.window_w = *spec.audit_w;
      meta.window_r = *spec.audit_r;
    } else if (spec.audit_r.has_value()) {
      meta.rate_r = *spec.audit_r;
    }
    writer.emplace(null_os, graph, meta);
    ec.sinks.trace = &*writer;
  }

  Engine eng(graph, *protocol, ec);
  if (spec.setup) spec.setup(eng, graph);

  std::unique_ptr<Adversary> adversary;
  if (spec.adversary) adversary = spec.adversary(graph, spec.seed);

  eng.run(adversary.get(), spec.steps, spec.stop_when_finished);
  if (spec.drain_after) eng.drain(spec.drain_cap);
  if (writer) writer->finish(eng.total_injected(), eng.total_absorbed());

  result.steps_run = eng.now();
  result.injected = eng.total_injected();
  result.absorbed = eng.total_absorbed();
  result.in_flight = eng.packets_in_flight();
  result.max_queue = eng.metrics().max_queue_global();
  result.max_residence = eng.metrics().max_residence_global();
  result.max_latency = eng.metrics().max_latency();
  if (writer) result.trace_hash = writer->content_hash();

  if (spec.artifacts.growth) {
    const GrowthReport growth = classify_growth(eng.metrics().series());
    result.verdict = growth.verdict;
    result.growth_ratio = growth.ratio;
  }
  if (want_audit) {
    eng.finalize_audit();
    result.feasible =
        spec.audit_w.has_value()
            ? check_window(eng.audit(), *spec.audit_w, *spec.audit_r).ok
            : check_rate_r(eng.audit(), *spec.audit_r).ok;
  }
  if (spec.artifacts.metrics)
    obs::collect_engine_metrics(eng, result.metrics);
  if (spec.collect) spec.collect(eng, adversary.get(), result);
}

}  // namespace

RunResult execute_run(const RunSpec& spec) {
  RunResult result;
  result.name = spec.name.empty()
                    ? spec.protocol + "/" + spec.topology.name + "/" +
                          std::to_string(spec.seed)
                    : spec.name;
  result.protocol = spec.protocol;
  result.topology = spec.topology.name;
  result.seed = spec.seed;
  try {
    run_cell(spec, result);
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

RunSpec make_scripted_spec(std::string name, Graph graph,
                           std::string protocol, Trace script, Time horizon) {
  // The graph and script outlive every per-cell replay through shared
  // ownership captured in the recipe/factory closures.
  auto shared_graph = std::make_shared<Graph>(std::move(graph));
  auto shared_script = std::make_shared<Trace>(std::move(script));
  RunSpec spec;
  spec.name = name;
  spec.topology.name = std::move(name);
  spec.topology.build = [shared_graph] { return *shared_graph; };
  spec.protocol = std::move(protocol);
  spec.adversary = [shared_script](const Graph&, std::uint64_t) {
    return std::make_unique<ReplayAdversary>(*shared_script);
  };
  spec.steps = std::max<Time>(1, horizon);
  spec.drain_after = true;
  spec.artifacts.trace_hash = true;
  return spec;
}

}  // namespace aqt
