#include "aqt/runner/run_spec.hpp"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "aqt/core/checkpoint.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/obs/snapshot.hpp"
#include "aqt/runner/job_checkpoint.hpp"
#include "aqt/trace/run_trace.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

/// Swallows bytes: trace-hash runs only need the streaming content hash,
/// so the trace itself goes into /dev/null-equivalent storage.
class NullBuf final : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override {
    return n;
  }
};

/// True when a stop was requested through RunControls::cancel.
bool cancel_requested(const RunControls& rc) {
  return rc.cancel != nullptr && rc.cancel->load(std::memory_order_relaxed);
}

void run_cell(const RunSpec& spec, RunResult& result) {
  AQT_REQUIRE(spec.topology.build != nullptr,
              "RunSpec '" << result.name << "' has no topology recipe");
  AQT_REQUIRE(spec.steps >= 1,
              "RunSpec '" << result.name << "' needs steps >= 1");
  EngineConfig ec = spec.engine;
  AQT_REQUIRE(ec.sinks.trace == nullptr && ec.sinks.profile == nullptr &&
                  ec.sinks.events == nullptr && ec.sinks.samples == nullptr,
              "RunSpec carries value configuration only; observer sinks are "
              "created per cell by the runner");

  const RunControls& rc = spec.controls;
  const bool resuming = !rc.resume_from.empty();
  const bool may_checkpoint = !rc.checkpoint_to.empty();
  AQT_REQUIRE(rc.checkpoint_at == 0 || may_checkpoint,
              "RunSpec '" << result.name
                          << "' sets checkpoint_at without checkpoint_to");
  AQT_REQUIRE(rc.checkpoint_at < spec.steps,
              "RunSpec '" << result.name << "' checkpoint_at "
                          << rc.checkpoint_at << " is not mid-run (steps = "
                          << spec.steps << ")");
  if (resuming || may_checkpoint) {
    // Checkpointable cells: the core checkpoint cannot carry the rate
    // audit, and the RANDOM protocol's key stream is engine-internal RNG
    // state the resumed process cannot reconstruct.
    AQT_REQUIRE(!spec.audit_w.has_value() && !spec.audit_r.has_value() &&
                    !ec.audit_rates,
                "RunSpec '" << result.name
                            << "': checkpoint/resume requires the rate "
                               "audit off (core/checkpoint limitation)");
    AQT_REQUIRE(spec.protocol != "RANDOM",
                "RunSpec '" << result.name
                            << "': checkpoint/resume requires a "
                               "deterministic protocol, not RANDOM");
  }

  JobCheckpoint cp;
  if (resuming) {
    cp = load_job_checkpoint_file(rc.resume_from);
    AQT_REQUIRE(cp.protocol == spec.protocol && cp.seed == spec.seed &&
                    cp.topology == spec.topology.name,
                "job checkpoint '"
                    << rc.resume_from << "' belongs to " << cp.protocol << "/"
                    << cp.topology << "/" << cp.seed << ", not "
                    << spec.protocol << "/" << spec.topology.name << "/"
                    << spec.seed);
    AQT_REQUIRE(cp.steps_done < spec.steps,
                "job checkpoint '" << rc.resume_from << "' is already at step "
                                   << cp.steps_done << " of " << spec.steps);
    AQT_REQUIRE(cp.has_trace == spec.artifacts.trace_hash,
                "job checkpoint '" << rc.resume_from
                                   << "' trace-hash artifact mismatch");
  }

  const Graph graph = spec.topology.build();
  // The adversary factory receives spec.seed verbatim; the protocol gets a
  // mixed stream so a stateful protocol (RANDOM) never shares the
  // adversary's RNG sequence.
  auto protocol = make_protocol(spec.protocol, mix_seed(spec.seed, 1));

  const bool want_audit = spec.audit_w.has_value() || spec.audit_r.has_value();
  AQT_REQUIRE(!spec.audit_w.has_value() || spec.audit_r.has_value(),
              "RunSpec audit_w needs audit_r");
  if (want_audit) ec.audit_rates = true;
  if (spec.artifacts.growth && ec.series_stride == 0)
    ec.series_stride = std::max<Time>(1, spec.steps / 512);

  NullBuf null_buf;
  std::ostream null_os(&null_buf);
  std::optional<RunTraceWriter> writer;
  if (spec.artifacts.trace_hash) {
    if (resuming) {
      // Continuation writer: no header, hash seeded from the interrupted
      // segment, so finish() yields the uninterrupted run's hash.
      writer.emplace(null_os, cp.trace);
    } else {
      RunTraceMeta meta;
      meta.protocol = spec.protocol;
      meta.seed = spec.seed;
      if (spec.audit_w.has_value()) {
        meta.window_w = *spec.audit_w;
        meta.window_r = *spec.audit_r;
      } else if (spec.audit_r.has_value()) {
        meta.rate_r = *spec.audit_r;
      }
      writer.emplace(null_os, graph, meta);
    }
    ec.sinks.trace = &*writer;
  }

  Engine eng(graph, *protocol, ec);
  if (resuming) {
    std::istringstream engine_state(cp.engine_state);
    load_checkpoint(eng, engine_state);
    AQT_REQUIRE(eng.now() == cp.steps_done,
                "job checkpoint '" << rc.resume_from << "': engine clock "
                                   << eng.now() << " != steps-done "
                                   << cp.steps_done);
  } else if (spec.setup) {
    // Initial configuration only for fresh runs; a resumed engine already
    // carries it inside the restored state.
    spec.setup(eng, graph);
  }

  std::unique_ptr<Adversary> adversary;
  if (spec.adversary) adversary = spec.adversary(graph, spec.seed);
  if (resuming && adversary != nullptr && cp.steps_done > 0) {
    // Fast-forward: replay the poll sequence the interrupted segment
    // consumed (steps 1..k, each exactly once, in order — the same
    // sequence Engine::run produces on both its polled and compiled
    // paths), discarding the output.  Only sound for oblivious
    // adversaries, whose work is a pure function of `now` and internal
    // state; adaptive ones would have observed intermediate engine states
    // that no longer exist.
    AQT_REQUIRE(adversary->is_oblivious(),
                "RunSpec '" << result.name
                            << "': resume requires an oblivious adversary "
                               "(adaptive adversaries cannot fast-forward)");
    AdversaryStep discard;
    for (Time t = 1; t <= cp.steps_done; ++t) {
      discard.injections.clear();
      discard.reroutes.clear();
      adversary->step(t, eng, discard);
    }
  }

  // The main loop, sliced so cancellation and the scheduled checkpoint are
  // observed at deterministic step boundaries.  Slicing never changes the
  // outcome: each Engine::run call advances the same step/poll sequence.
  bool checkpointed = false;
  for (;;) {
    const Time done = eng.now();
    if (done >= spec.steps) break;
    Time next = spec.steps;
    if (rc.checkpoint_at > done && rc.checkpoint_at < next)
      next = rc.checkpoint_at;
    if (rc.slice_steps > 0 && done + rc.slice_steps < next)
      next = done + rc.slice_steps;
    eng.run(adversary.get(), next - done, spec.stop_when_finished);
    if (eng.now() < next) break;  // Adversary finished early; engine stopped.
    const bool at_checkpoint =
        rc.checkpoint_at != 0 && eng.now() == rc.checkpoint_at;
    const bool cancel_now = cancel_requested(rc);
    const bool checkpoint_cancel =
        cancel_now && may_checkpoint && rc.checkpoint_on_cancel != nullptr &&
        rc.checkpoint_on_cancel->load(std::memory_order_relaxed);
    if (at_checkpoint || checkpoint_cancel) {
      JobCheckpoint out;
      out.name = spec.name;
      out.protocol = spec.protocol;
      out.topology = spec.topology.name;
      out.seed = spec.seed;
      out.steps_done = eng.now();
      if (writer) {
        out.has_trace = true;
        out.trace = writer->resume_state();
      }
      std::ostringstream engine_state;
      save_checkpoint(eng, engine_state);
      out.engine_state = engine_state.str();
      save_job_checkpoint_file(out, rc.checkpoint_to);
      checkpointed = true;
      break;
    }
    if (cancel_now) {
      result.steps_run = eng.now();
      result.injected = eng.total_injected();
      result.absorbed = eng.total_absorbed();
      result.in_flight = eng.packets_in_flight();
      result.error = "cancelled";
      return;
    }
  }

  if (checkpointed) {
    // Interrupted, not finished: no drain, no trace footer, no growth /
    // audit verdicts — those belong to the resumed completion.
    result.checkpointed = true;
    result.checkpoint_step = eng.now();
    result.steps_run = eng.now();
    result.injected = eng.total_injected();
    result.absorbed = eng.total_absorbed();
    result.in_flight = eng.packets_in_flight();
    result.max_queue = eng.metrics().max_queue_global();
    result.max_residence = eng.metrics().max_residence_global();
    result.max_latency = eng.metrics().max_latency();
    return;
  }

  if (spec.drain_after) eng.drain(spec.drain_cap);
  if (writer) writer->finish(eng.total_injected(), eng.total_absorbed());

  result.steps_run = eng.now();
  result.injected = eng.total_injected();
  result.absorbed = eng.total_absorbed();
  result.in_flight = eng.packets_in_flight();
  result.max_queue = eng.metrics().max_queue_global();
  result.max_residence = eng.metrics().max_residence_global();
  result.max_latency = eng.metrics().max_latency();
  if (writer) result.trace_hash = writer->content_hash();

  if (spec.artifacts.growth) {
    const GrowthReport growth = classify_growth(eng.metrics().series());
    result.verdict = growth.verdict;
    result.growth_ratio = growth.ratio;
  }
  if (want_audit) {
    eng.finalize_audit();
    result.feasible =
        spec.audit_w.has_value()
            ? check_window(eng.audit(), *spec.audit_w, *spec.audit_r).ok
            : check_rate_r(eng.audit(), *spec.audit_r).ok;
  }
  if (spec.artifacts.metrics)
    obs::collect_engine_metrics(eng, result.metrics);
  if (spec.collect) spec.collect(eng, adversary.get(), result);
}

}  // namespace

RunResult execute_run(const RunSpec& spec) {
  RunResult result;
  result.name = spec.name.empty()
                    ? spec.protocol + "/" + spec.topology.name + "/" +
                          std::to_string(spec.seed)
                    : spec.name;
  result.protocol = spec.protocol;
  result.topology = spec.topology.name;
  result.seed = spec.seed;
  try {
    run_cell(spec, result);
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  return result;
}

RunSpec make_scripted_spec(std::string name, Graph graph,
                           std::string protocol, Trace script, Time horizon) {
  // The graph and script outlive every per-cell replay through shared
  // ownership captured in the recipe/factory closures.
  auto shared_graph = std::make_shared<Graph>(std::move(graph));
  auto shared_script = std::make_shared<Trace>(std::move(script));
  RunSpec spec;
  spec.name = name;
  spec.topology.name = std::move(name);
  spec.topology.build = [shared_graph] { return *shared_graph; };
  spec.protocol = std::move(protocol);
  spec.adversary = [shared_script](const Graph&, std::uint64_t) {
    return std::make_unique<ReplayAdversary>(*shared_script);
  };
  spec.steps = std::max<Time>(1, horizon);
  spec.drain_after = true;
  spec.artifacts.trace_hash = true;
  return spec;
}

}  // namespace aqt
