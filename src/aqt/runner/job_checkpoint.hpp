// Job-level checkpoints: a core engine checkpoint (core/checkpoint.hpp)
// plus the run-level context the executor needs to *continue the same
// logical run* — which spec the state belongs to, how many steps were
// done, and the mid-stream trace-hash state (trace/run_trace.hpp
// TraceResumeState) so the resumed segment's content hash ends up
// byte-identical to an uninterrupted run.
//
// Format (versioned line-oriented text, same discipline as the engine
// checkpoint it embeds):
//
//   aqt-job-checkpoint 1
//   name <display name, '-' when empty>
//   protocol <NAME>
//   topology <name, '-' when empty>
//   seed <n>
//   steps-done <k>
//   trace <0|1> <hash-state 16 hex> <last-step>
//   engine
//   <core checkpoint text, verbatim to EOF>
//
// The identity lines are checked on resume: resuming a checkpoint against
// a spec with a different protocol/topology/seed is a hard error, not a
// silent divergence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "aqt/core/types.hpp"
#include "aqt/trace/run_trace.hpp"

namespace aqt {

inline constexpr int kJobCheckpointVersion = 1;

/// Everything save/load moves; `engine_state` is the embedded core
/// checkpoint text, passed through to save_checkpoint/load_checkpoint.
struct JobCheckpoint {
  std::string name;
  std::string protocol;
  std::string topology;
  std::uint64_t seed = 0;
  Time steps_done = 0;

  bool has_trace = false;  ///< Run had the trace_hash artifact on.
  TraceResumeState trace;

  std::string engine_state;
};

void save_job_checkpoint(const JobCheckpoint& cp, std::ostream& os);
void save_job_checkpoint_file(const JobCheckpoint& cp,
                              const std::string& path);

/// Throws PreconditionError (naming `where`) on malformed or truncated
/// input; never aborts — checkpoint files arrive over operational
/// boundaries (serve restarts, operator copies) and are untrusted.
JobCheckpoint load_job_checkpoint(std::istream& is, const std::string& where);
JobCheckpoint load_job_checkpoint_file(const std::string& path);

}  // namespace aqt
