#include "aqt/runner/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <thread>

#include "aqt/obs/profiler.hpp"
#include "aqt/obs/tracing.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Chunk size for the shared-index queue: large enough that workers do not
/// contend on the atomic for tiny cells, small enough that a slow cell at
/// the end cannot leave workers idle behind a big chunk.
std::size_t chunk_size(std::size_t count, unsigned workers) {
  const std::size_t target = count / (static_cast<std::size_t>(workers) * 8);
  return std::clamp<std::size_t>(target, 1, 32);
}

}  // namespace

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<std::string> parallel_for_each(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t)>& body) {
  AQT_REQUIRE(body != nullptr, "parallel_for_each needs a body");
  std::vector<std::string> errors(count);
  const auto guarded = [&](std::size_t i) {
    try {
      body(i);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    } catch (...) {
      errors[i] = "unknown exception";
    }
  };

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_jobs(jobs), std::max<std::size_t>(count, 1)));
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) guarded(i);
    return errors;
  }

  // Chunked work stealing over a shared atomic index: each worker grabs
  // the next chunk of indices; items are fully independent, so no further
  // synchronization is needed — each index is processed exactly once and
  // every output slot is written by exactly one worker.
  const std::size_t chunk = chunk_size(count, workers);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    // aqt-audit: allow(AUD010) -- every referent outlives the join below
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(count, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) guarded(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return errors;
}

void collect_pool_worker_metrics(const PoolTelemetry& telemetry,
                                 obs::MetricRegistry& registry) {
  registry
      .gauge("aqt_pool_workers", "Worker threads the batch dispatched on")
      .set(static_cast<double>(telemetry.workers.size()));
  registry
      .gauge("aqt_pool_wall_seconds", "Batch dispatch wall time")
      .set(static_cast<double>(telemetry.wall_nanos) * 1e-9);
  for (std::size_t w = 0; w < telemetry.workers.size(); ++w) {
    const PoolWorkerStats& s = telemetry.workers[w];
    const std::string id = std::to_string(w);
    registry
        .counter("aqt_pool_worker_cells_total",
                 "Cells executed, per pool worker", "worker", id)
        .set(s.cells);
    registry
        .counter("aqt_pool_worker_steals_total",
                 "Chunks grabbed from the shared queue, per pool worker",
                 "worker", id)
        .set(s.steals);
    registry
        .counter("aqt_pool_worker_steal_failures_total",
                 "Empty chunk grabs (queue exhausted), per pool worker",
                 "worker", id)
        .set(s.steal_failures);
    registry
        .gauge("aqt_pool_worker_busy_seconds",
               "Wall time inside cell bodies, per pool worker", "worker",
               id)
        .set(static_cast<double>(s.busy_nanos) * 1e-9);
    registry
        .gauge("aqt_pool_worker_idle_seconds",
               "Worker wall time minus busy time, per pool worker",
               "worker", id)
        .set(static_cast<double>(s.idle_nanos) * 1e-9);
    registry
        .histogram("aqt_pool_worker_chunk_nanos",
                   "Per-chunk wall-time distribution, per pool worker",
                   "worker", id)
        .merge(s.chunk_nanos);
  }
}

RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs) {
  return run_pool(specs, jobs, PoolOptions{});
}

RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs,
                       const PoolOptions& options) {
  RunPoolReport report;
  report.results.resize(specs.size());

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_jobs(jobs), std::max<std::size_t>(specs.size(), 1)));

  // One registry per worker, indexed by worker id; cells update only their
  // worker's instance, so no locking, and the post-barrier merge is
  // commutative (counters add, gauges max) — the merged snapshot is
  // byte-identical no matter which worker ran which cell.  The telemetry
  // slots follow the same single-writer discipline but are merged by
  // worker id, never summed across workers.
  std::vector<obs::MetricRegistry> worker_metrics(workers);
  report.telemetry.workers.resize(workers);
  std::vector<obs::TraceEventLog> worker_traces(
      options.trace != nullptr ? workers : 0);
  const obs::TickClock clock;
  const auto count_cell = [](obs::MetricRegistry& reg, const RunResult& r) {
    reg.counter("aqt_runner_cells_total", "Cells executed by the pool").inc();
    reg.counter("aqt_runner_cell_errors_total",
                "Cells that ended in an error RunResult")
        .inc(r.ok() ? 0 : 1);
    reg.counter("aqt_runner_steps_total", "Engine steps across all cells")
        .inc(static_cast<std::uint64_t>(r.steps_run));
    reg.counter("aqt_runner_injected_total",
                "Packets injected across all cells")
        .inc(r.injected);
    reg.counter("aqt_runner_absorbed_total",
                "Packets absorbed across all cells")
        .inc(r.absorbed);
    obs::Gauge& peak = reg.gauge("aqt_runner_max_queue_packets",
                                 "Largest queue observed by any cell");
    peak.set(std::max(peak.value(), static_cast<double>(r.max_queue)));
    reg.histogram("aqt_runner_cell_residence_steps",
                  "Per-cell max residence distribution")
        .add(static_cast<std::int64_t>(r.max_residence));
  };

  // The per-worker body for one claimed chunk [begin, end): executes the
  // cells, accounts busy time, and (optionally) logs one span per cell.
  const auto run_chunk = [&](unsigned w, std::size_t begin,
                             std::size_t end) {
    PoolWorkerStats& stats = report.telemetry.workers[w];
    obs::TraceEventLog* const tlog =
        options.trace != nullptr ? &worker_traces[w] : nullptr;
    const std::uint64_t chunk_start = clock.ticks();
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint64_t cell_span_start =
          tlog != nullptr ? tlog->now_nanos() : 0;
      report.results[i] = execute_run(specs[i]);
      report.results[i].index = i;
      count_cell(worker_metrics[w], report.results[i]);
      ++stats.cells;
      if (tlog != nullptr) {
        const std::uint64_t now = tlog->now_nanos();
        tlog->complete("cell " + report.results[i].name, "aqt.cell",
                       cell_span_start,
                       now > cell_span_start ? now - cell_span_start : 0,
                       w + 1);
      }
    }
    const std::uint64_t chunk_nanos =
        clock.to_nanos(clock.ticks() - chunk_start);
    ++stats.steals;
    stats.busy_nanos += chunk_nanos;
    stats.chunk_nanos.add(static_cast<std::int64_t>(chunk_nanos));
  };

  const std::uint64_t pool_start = clock.ticks();
  if (workers <= 1 || specs.size() <= 1) {
    if (!specs.empty()) run_chunk(0, 0, specs.size());
    report.telemetry.workers[0].steal_failures = 1;
  } else {
    const std::size_t chunk = chunk_size(specs.size(), workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      // aqt-audit: allow(AUD010) -- every referent outlives the join below
      pool.emplace_back([&, w] {
        const std::uint64_t worker_start = clock.ticks();
        for (;;) {
          const std::size_t begin =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= specs.size()) break;
          run_chunk(w, begin, std::min(specs.size(), begin + chunk));
        }
        PoolWorkerStats& stats = report.telemetry.workers[w];
        ++stats.steal_failures;
        const std::uint64_t wall =
            clock.to_nanos(clock.ticks() - worker_start);
        stats.idle_nanos = wall > stats.busy_nanos
                               ? wall - stats.busy_nanos
                               : 0;
      });
    }
    for (auto& t : pool) t.join();
  }
  report.telemetry.wall_nanos = clock.to_nanos(clock.ticks() - pool_start);

  report.jobs_used = workers;
  for (const obs::MetricRegistry& reg : worker_metrics)
    report.metrics.merge_from(reg);
  if (options.trace != nullptr) {
    for (unsigned w = 0; w < workers; ++w) {
      options.trace->name_thread(w + 1, "pool worker " + std::to_string(w));
      options.trace->merge_from(worker_traces[w]);
    }
  }
  return report;
}

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned jobs) {
  return run_pool(specs, jobs).results;
}

}  // namespace aqt
