#include "aqt/runner/pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Chunk size for the shared-index queue: large enough that workers do not
/// contend on the atomic for tiny cells, small enough that a slow cell at
/// the end cannot leave workers idle behind a big chunk.
std::size_t chunk_size(std::size_t count, unsigned workers) {
  const std::size_t target = count / (static_cast<std::size_t>(workers) * 8);
  return std::clamp<std::size_t>(target, 1, 32);
}

}  // namespace

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::vector<std::string> parallel_for_each(
    std::size_t count, unsigned jobs,
    const std::function<void(std::size_t)>& body) {
  AQT_REQUIRE(body != nullptr, "parallel_for_each needs a body");
  std::vector<std::string> errors(count);
  const auto guarded = [&](std::size_t i) {
    try {
      body(i);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    } catch (...) {
      errors[i] = "unknown exception";
    }
  };

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_jobs(jobs), std::max<std::size_t>(count, 1)));
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) guarded(i);
    return errors;
  }

  // Chunked work stealing over a shared atomic index: each worker grabs
  // the next chunk of indices; items are fully independent, so no further
  // synchronization is needed — each index is processed exactly once and
  // every output slot is written by exactly one worker.
  const std::size_t chunk = chunk_size(count, workers);
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    // aqt-audit: allow(AUD010) -- every referent outlives the join below
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        const std::size_t end = std::min(count, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) guarded(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return errors;
}

RunPoolReport run_pool(const std::vector<RunSpec>& specs, unsigned jobs) {
  RunPoolReport report;
  report.results.resize(specs.size());

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      resolve_jobs(jobs), std::max<std::size_t>(specs.size(), 1)));

  // One registry per worker, indexed by worker id; cells update only their
  // worker's instance, so no locking, and the post-barrier merge is
  // commutative (counters add, gauges max) — the merged snapshot is
  // byte-identical no matter which worker ran which cell.
  std::vector<obs::MetricRegistry> worker_metrics(workers);
  const auto count_cell = [](obs::MetricRegistry& reg, const RunResult& r) {
    reg.counter("aqt_runner_cells_total", "Cells executed by the pool").inc();
    reg.counter("aqt_runner_cell_errors_total",
                "Cells that ended in an error RunResult")
        .inc(r.ok() ? 0 : 1);
    reg.counter("aqt_runner_steps_total", "Engine steps across all cells")
        .inc(static_cast<std::uint64_t>(r.steps_run));
    reg.counter("aqt_runner_injected_total",
                "Packets injected across all cells")
        .inc(r.injected);
    reg.counter("aqt_runner_absorbed_total",
                "Packets absorbed across all cells")
        .inc(r.absorbed);
    obs::Gauge& peak = reg.gauge("aqt_runner_max_queue_packets",
                                 "Largest queue observed by any cell");
    peak.set(std::max(peak.value(), static_cast<double>(r.max_queue)));
    reg.histogram("aqt_runner_cell_residence_steps",
                  "Per-cell max residence distribution")
        .add(static_cast<std::int64_t>(r.max_residence));
  };

  if (workers <= 1 || specs.size() <= 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      report.results[i] = execute_run(specs[i]);
      report.results[i].index = i;
      count_cell(worker_metrics[0], report.results[i]);
    }
  } else {
    const std::size_t chunk = chunk_size(specs.size(), workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      // aqt-audit: allow(AUD010) -- every referent outlives the join below
      pool.emplace_back([&, w] {
        for (;;) {
          const std::size_t begin =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= specs.size()) return;
          const std::size_t end = std::min(specs.size(), begin + chunk);
          for (std::size_t i = begin; i < end; ++i) {
            // aqt-audit: allow(AUD008) -- slot i has exactly one writer
            report.results[i] = execute_run(specs[i]);
            // aqt-audit: allow(AUD008) -- slot i has exactly one writer
            report.results[i].index = i;
            count_cell(worker_metrics[w], report.results[i]);
          }
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  report.jobs_used = workers;
  for (const obs::MetricRegistry& reg : worker_metrics)
    report.metrics.merge_from(reg);
  return report;
}

std::vector<RunResult> run_all(const std::vector<RunSpec>& specs,
                               unsigned jobs) {
  return run_pool(specs, jobs).results;
}

}  // namespace aqt
