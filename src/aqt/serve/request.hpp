// The wire-level job API: a versioned, declarative RunRequest.
//
// RunSpec (runner/run_spec.hpp) is closure-based — topology recipes and
// adversary factories are std::function values — which is exactly right
// for in-process callers and exactly wrong for a service boundary: a
// closure cannot be validated, versioned, stored, or replayed from disk.
// RunRequest is the declarative twin: topologies are named recipes or
// grammar specs, adversaries are (kind, parameters) records, artifact
// selections are names — all data.  registry.hpp compiles a RunRequest
// into a RunSpec; the compilation is pure, so the same request compiled by
// aqt-serve and by `aqt-sim --batch` yields byte-identical runs.
//
// Wire shape (JSON, one object; schemas/run_request.schema.json pins it):
//
//   {
//     "aqt_run_request": 1,
//     "id": "job-7",                               // optional
//     "topology": "ring:8",                        // grammar spec or named recipe
//     "protocol": "FIFO",
//     "adversary": {"kind": "stochastic", "w": 8, "r": "9/10", "d": 4},
//     "seed": 1,
//     "steps": 20000,
//     "stop_when_finished": true,                  // optional, default true
//     "drain": false,                              // optional
//     "drain_cap": 4096,                           // optional
//     "audit": {"w": 8, "r": "9/10"},              // optional
//     "artifacts": ["trace_hash"],                 // optional
//     "deadline_ms": 60000,                        // optional, serve-only
//     "resume_from": "/path/job.ckpt"              // optional
//   }
//
// Unknown top-level or adversary keys are rejected (SRV005), so typos fail
// loudly instead of silently running a default.
//
// Every rejection carries a stable machine-readable code (RequestError::
// code, the SRVxxx table below); messages are for humans, codes are the
// contract.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/serve/json.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {
namespace serve {

inline constexpr int kRunRequestVersion = 1;

/// Stable machine-readable error codes for the job API.  Codes are
/// append-only: meanings never change, retired codes are never reused.
namespace errc {
inline constexpr const char* kBadJson = "SRV001";     ///< Unparseable JSON.
inline constexpr const char* kBadVersion = "SRV002";  ///< aqt_run_request missing/unsupported.
inline constexpr const char* kMissingField = "SRV003";
inline constexpr const char* kBadField = "SRV004";  ///< Wrong type or out-of-range value.
inline constexpr const char* kUnknownField = "SRV005";
inline constexpr const char* kUnknownTopology = "SRV006";
inline constexpr const char* kUnknownProtocol = "SRV007";
inline constexpr const char* kUnknownAdversary = "SRV008";
inline constexpr const char* kBadParam = "SRV009";  ///< Parameters inconsistent with the kind/topology.
inline constexpr const char* kQueueFull = "SRV010";  ///< Intake overloaded; resubmit later.
inline constexpr const char* kDeadline = "SRV011";   ///< Job exceeded its deadline.
inline constexpr const char* kCancelled = "SRV012";  ///< Client cancellation.
inline constexpr const char* kDraining = "SRV013";   ///< Server is shutting down.
inline constexpr const char* kRunFailed = "SRV014";  ///< The cell itself errored.
inline constexpr const char* kBadOp = "SRV015";      ///< Malformed protocol envelope.
inline constexpr const char* kUnknownJob = "SRV016";
}  // namespace errc

/// A rejected request/operation: `code` is one of the errc constants.
class RequestError : public std::runtime_error {
 public:
  RequestError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Adversary selection as data.  Which fields are meaningful depends on
/// `kind`; parse_run_request fills defaults and rejects junk per kind.
struct AdversarySpec {
  std::string kind = "stochastic";  ///< none stochastic hotspot convoy bucket lps
  std::int64_t w = 12;              ///< Window (stochastic/hotspot/convoy).
  Rat r = Rat(1, 4);                ///< Injection rate (all but none).
  std::int64_t d = 4;               ///< Max route length.
  std::int64_t burst = 2;           ///< Token-bucket burst (bucket).
  std::int64_t iterations = 3;      ///< Outer iterations (lps).
  std::int64_t s_star = 1200;       ///< Initial flat queue (lps).
};

/// The declarative job.  Everything is a value; defaults match aqt-sim's.
struct RunRequest {
  int version = kRunRequestVersion;
  std::string id;  ///< Client-chosen display identity (optional).

  std::string topology = "grid:4x4";  ///< Named recipe or grammar spec.
  std::string protocol = "FIFO";
  AdversarySpec adversary;
  std::uint64_t seed = 1;
  Time steps = 10000;

  bool stop_when_finished = true;
  bool drain = false;
  Time drain_cap = 4096;

  std::optional<std::int64_t> audit_w;
  std::optional<Rat> audit_r;

  bool art_metrics = false;
  bool art_trace_hash = true;  ///< Default on: the cheap determinism proof.
  bool art_growth = false;

  std::uint64_t deadline_ms = 0;  ///< 0 = no deadline (serve-side knob).
  std::string resume_from;        ///< Job-checkpoint path to continue.
};

/// Parses and validates one request document.  Throws RequestError with
/// codes SRV001..SRV005 (registry.cpp owns SRV006..SRV009, which need the
/// name tables).
RunRequest parse_run_request(const std::string& text,
                             const std::string& where);
RunRequest parse_run_request(const JsonValue& doc, const std::string& where);

/// The canonical JSON form: every field materialized (defaults included),
/// fixed key order, serve::write_json bytes.  parse(canonical(x)) == x and
/// canonical(parse(canonical(x))) == canonical(x) — the round-trip anchor
/// the serve/offline byte-identity tests pin.
JsonValue run_request_to_json(const RunRequest& req);
std::string canonical_request_json(const RunRequest& req);

}  // namespace serve
}  // namespace aqt
