// The resident job service: bounded intake, fair scheduling, deadlines,
// cancellation, checkpoint-on-drain — everything between "a RunRequest
// arrived" and "a RunResult exists", independent of any transport.
//
// Design constraints, in priority order:
//
//   1. Never stall the pool: intake is a bounded queue; when it is full a
//      submit is *rejected immediately* with SRV010 (shed load at the
//      edge, where the client can react) instead of blocking.
//   2. Fairness: ready jobs are dispatched round-robin across client ids,
//      so one client queueing 500 jobs cannot starve a client queueing 1.
//      Per client, jobs run in submission order.
//   3. Determinism of *results*: execution order is scheduling policy, but
//      each cell is an isolated execute_run — the artifacts for a given
//      request are byte-identical no matter which worker ran it when
//      (the run-pool's cell-containment property, inherited wholesale).
//   4. Bounded shutdown: drain() stops intake (SRV013), asks active jobs
//      to stop at their next slice boundary — checkpointing them when a
//      checkpoint_dir is configured, so long jobs survive restarts — and
//      fails the still-queued remainder with SRV013.
//
// Deadlines: a job with deadline_ms > 0 is cancelled (SRV011) at its next
// slice boundary once the wall clock passes submit + deadline.  Precision
// is therefore one slice, which is the knob ServiceConfig::slice_steps.
//
// Completion is push-based: the transport registers a callback per job and
// receives the terminal JobOutcome exactly once, on a worker thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aqt/obs/registry.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/registry.hpp"
#include "aqt/serve/request.hpp"

namespace aqt {
namespace serve {

struct ServiceConfig {
  unsigned workers = 1;        ///< Concurrent job executors.
  std::size_t queue_cap = 64;  ///< Bounded intake (queued, not active).
  /// Cancellation/deadline poll granularity in engine steps.
  Time slice_steps = 2048;
  /// Deadline applied when a request carries none (0 = unlimited).
  std::uint64_t default_deadline_ms = 0;
  /// When set, drained jobs checkpoint here (files <job>.ckpt) instead of
  /// being cancelled outright; checkpoint-ineligible jobs still cancel.
  std::string checkpoint_dir;
  /// Start paused (no dispatch until resume()) — lets tests and operators
  /// stage a backlog and then observe pure scheduling behavior.
  bool start_paused = false;
};

/// Terminal state of one job.
enum class JobState : std::uint8_t {
  kQueued,
  kActive,
  kDone,          ///< result.ok() or a cell error (SRV014 for clients).
  kCancelled,     ///< SRV012 (client) — result holds partial scalars.
  kDeadline,      ///< SRV011.
  kCheckpointed,  ///< Stopped with state saved; resumable.
  kShed,          ///< SRV013: still queued when drain arrived.
};

const char* to_string(JobState s);

/// Everything a transport needs to report one finished job.
struct JobOutcome {
  std::uint64_t job = 0;
  std::string client;
  JobState state = JobState::kDone;
  RunResult result;
  std::string checkpoint_path;  ///< kCheckpointed only.
  std::uint64_t start_seq = 0;  ///< Dispatch order (1-based; fairness probe).
  double wall_seconds = 0.0;    ///< Submit-to-terminal latency.
};

class Service {
 public:
  using CompletionFn = std::function<void(const JobOutcome&)>;

  Service(const Registry& registry, ServiceConfig config);
  ~Service();  ///< Implies drain() + join.

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Validates + compiles + enqueues.  Returns the server-assigned job id.
  /// Throws RequestError: compilation codes verbatim, SRV010 when the
  /// queue is full, SRV013 when draining.  `on_done` fires exactly once.
  std::uint64_t submit(const std::string& client, const RunRequest& request,
                       CompletionFn on_done);

  /// Requests cancellation; returns false for unknown/finished jobs.
  bool cancel(std::uint64_t job);

  /// Scheduling gate (ops knob + test hook).
  void pause();
  void resume();

  /// Stops intake, checkpoints/cancels active jobs, sheds queued ones,
  /// joins the workers.  Idempotent.  Completion callbacks for every
  /// not-yet-terminal job fire before this returns.
  void drain();

  [[nodiscard]] bool draining() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] std::size_t active_jobs() const;

  /// aqt_serve_* gauges/counters into `registry` (see docs/TOOLS.md).
  void collect_metrics(obs::MetricRegistry& registry) const;

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string client;
    RunRequest request;
    RunSpec spec;
    std::shared_ptr<std::atomic<bool>> cancel_flag;
    CompletionFn on_done;
    JobState state = JobState::kQueued;
    bool deadline_hit = false;
    bool client_cancelled = false;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  ///< max() = none.
    std::uint64_t start_seq = 0;
  };

  void worker_loop();
  void monitor_loop();
  /// Picks the next job round-robin across clients; nullptr when empty.
  std::shared_ptr<Job> next_job_locked();
  void finish_job(const std::shared_ptr<Job>& job, JobState state,
                  RunResult result, const std::string& checkpoint_path);

  const Registry& registry_;
  const ServiceConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool paused_ = false;
  bool draining_ = false;
  std::uint64_t next_id_ = 1;
  std::uint64_t dispatch_seq_ = 0;

  /// Intake: per-client FIFO + rotation order for round-robin.
  std::map<std::string, std::deque<std::shared_ptr<Job>>> queues_;
  std::vector<std::string> rotation_;
  std::size_t rotation_cursor_ = 0;
  std::size_t queued_count_ = 0;

  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;  ///< All non-terminal.
  std::size_t active_count_ = 0;

  // Counters for collect_metrics (mutated under mu_).
  std::uint64_t submitted_total_ = 0;
  std::uint64_t rejected_total_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t failed_total_ = 0;
  std::uint64_t cancelled_total_ = 0;
  std::uint64_t deadline_total_ = 0;
  std::uint64_t checkpointed_total_ = 0;
  std::uint64_t shed_total_ = 0;
  std::vector<double> latencies_;  ///< Terminal-job wall seconds.

  std::vector<std::thread> workers_;
  std::thread monitor_;
};

}  // namespace serve
}  // namespace aqt
