#include "aqt/serve/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace serve {

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

JsonValue JsonValue::make_double(double v) {
  AQT_REQUIRE(std::isfinite(v), "JSON cannot carry non-finite number " << v);
  JsonValue out;
  out.kind_ = Kind::kDouble;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array() {
  JsonValue out;
  out.kind_ = Kind::kArray;
  return out;
}

JsonValue JsonValue::make_object() {
  JsonValue out;
  out.kind_ = Kind::kObject;
  return out;
}

bool JsonValue::as_bool() const {
  AQT_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  AQT_REQUIRE(kind_ == Kind::kInt, "JSON value is not an integer");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  AQT_REQUIRE(kind_ == Kind::kDouble, "JSON value is not a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  AQT_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  AQT_REQUIRE(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  AQT_REQUIRE(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

void JsonValue::push_back(JsonValue v) {
  AQT_REQUIRE(kind_ == Kind::kArray, "push_back on a non-array JSON value");
  items_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  AQT_REQUIRE(kind_ == Kind::kObject, "set on a non-object JSON value");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : members_)
    if (member.first == key) return &member.second;
  return nullptr;
}

std::string json_escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Strict recursive-descent parser with byte/depth bounds.  Position-
/// attributed PreconditionError on any malformation; the same discipline
// as the audit layer's baseline reader.
class Parser {
 public:
  Parser(const std::string& text, const std::string& where)
      : s_(text), where_(where) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    AQT_REQUIRE(false, "" << where_ << ": " << what << " at byte " << pos_);
#if defined(__GNUC__)
    __builtin_unreachable();
#endif
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  void literal(const char* rest) {
    for (const char* p = rest; *p != '\0'; ++p) expect(*p);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4U;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8-encode the code point (BMP only; surrogates rejected —
          // the wire protocol carries names and paths, not prose).
          if (code >= 0xd800 && code <= 0xdfff)
            fail("surrogate \\u escape unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (peek() < '0' || peek() > '9') fail("expected digit");
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    bool is_double = false;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (peek() < '0' || peek() > '9') fail("expected fraction digit");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (peek() < '0' || peek() > '9') fail("expected exponent digit");
      while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (!is_double) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec != std::errc() || ptr != tok.data() + tok.size())
        fail("integer out of range");
      return JsonValue::make_int(v);
    }
    double v = 0.0;
    try {
      std::size_t used = 0;
      v = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number");
    } catch (const std::exception&) {
      fail("malformed number");
    }
    if (!std::isfinite(v)) fail("non-finite number");
    return JsonValue::make_double(v);
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth >= kMaxJsonDepth) fail("JSON nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      take();
      JsonValue obj = JsonValue::make_object();
      skip_ws();
      if (consume('}')) return obj;
      for (;;) {
        skip_ws();
        const std::string key = parse_string();
        if (obj.find(key) != nullptr) fail("duplicate key '" + key + "'");
        skip_ws();
        expect(':');
        obj.set(key, parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      take();
      JsonValue arr = JsonValue::make_array();
      skip_ws();
      if (consume(']')) return arr;
      for (;;) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (consume(',')) continue;
        expect(']');
        return arr;
      }
    }
    if (c == '"') return JsonValue::make_string(parse_string());
    if (c == 't') {
      literal("true");
      return JsonValue::make_bool(true);
    }
    if (c == 'f') {
      literal("false");
      return JsonValue::make_bool(false);
    }
    if (c == 'n') {
      literal("null");
      return JsonValue::make_null();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
  }

  const std::string& s_;
  const std::string& where_;
  std::size_t pos_ = 0;
};

void write_value(const JsonValue& v, std::ostream& os) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; break;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case JsonValue::Kind::kInt: os << v.as_int(); break;
    case JsonValue::Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v.as_double());
      os << buf;
      break;
    }
    case JsonValue::Kind::kString:
      os << '"' << json_escape_string(v.as_string()) << '"';
      break;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) os << ',';
        first = false;
        write_value(item, os);
      }
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& member : v.members()) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape_string(member.first) << "\":";
        write_value(member.second, os);
      }
      os << '}';
      break;
    }
  }
}

}  // namespace

JsonValue parse_json(const std::string& text, const std::string& where) {
  AQT_REQUIRE(text.size() <= kMaxJsonBytes,
              "" << where << ": JSON document of " << text.size()
                   << " bytes exceeds the " << kMaxJsonBytes
                   << "-byte limit");
  Parser p(text, where);
  return p.parse_document();
}

void write_json(const JsonValue& value, std::ostream& os) {
  write_value(value, os);
}

std::string write_json(const JsonValue& value) {
  std::ostringstream os;
  write_value(value, os);
  return os.str();
}

}  // namespace serve
}  // namespace aqt
