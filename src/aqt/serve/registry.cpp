#include "aqt/serve/registry.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "aqt/adversaries/bucket.hpp"
#include "aqt/adversaries/lps.hpp"
#include "aqt/adversaries/stochastic.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/topology/spec.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace serve {
namespace {

/// Longest simple forward path from node 0, capped at `d` edges — the same
/// route aqt-sim computes for its convoy adversary, factored here so the
/// compiled spec and the CLI agree packet for packet.
Route convoy_route(const Graph& graph, std::int64_t d) {
  Route path;
  NodeId at = 0;
  std::vector<bool> seen(graph.node_count(), false);
  seen[at] = true;
  while (!graph.out_edges(at).empty() &&
         path.size() < static_cast<std::size_t>(d)) {
    EdgeId next = kNoEdge;
    for (EdgeId e : graph.out_edges(at))
      if (!seen[graph.head(e)]) {
        next = e;
        break;
      }
    if (next == kNoEdge) break;
    path.push_back(next);
    at = graph.head(next);
    seen[at] = true;
  }
  return path;
}

}  // namespace

Registry::Registry() = default;

void Registry::register_topology(NamedTopology entry) {
  AQT_REQUIRE(!entry.name.empty(), "named topology needs a name");
  AQT_REQUIRE(entry.name.find(':') == std::string::npos,
              "named topology '" << entry.name
                                 << "' may not contain ':' (reserved for "
                                    "grammar specs)");
  AQT_REQUIRE(entry.build != nullptr,
              "named topology '" << entry.name << "' needs a builder");
  for (auto& existing : named_) {
    if (existing.name == entry.name) {
      existing = std::move(entry);
      return;
    }
  }
  named_.push_back(std::move(entry));
}

bool Registry::has_topology(const std::string& name) const {
  if (name.find(':') != std::string::npos) {
    try {
      (void)parse_topology_spec(name, 1);
      return true;
    } catch (const std::exception&) {
      return false;
    }
  }
  return std::any_of(named_.begin(), named_.end(),
                     [&](const NamedTopology& t) { return t.name == name; });
}

JsonValue Registry::catalog() const {
  JsonValue doc = JsonValue::make_object();
  doc.set("aqt_catalog", JsonValue::make_int(1));
  doc.set("topology_grammar", JsonValue::make_string(topology_spec_grammar()));
  JsonValue named = JsonValue::make_array();
  for (const NamedTopology& t : named_) {
    JsonValue entry = JsonValue::make_object();
    entry.set("name", JsonValue::make_string(t.name));
    entry.set("description", JsonValue::make_string(t.description));
    named.push_back(std::move(entry));
  }
  doc.set("topologies", std::move(named));
  JsonValue protocols = JsonValue::make_array();
  for (const std::string& p : protocol_names())
    protocols.push_back(JsonValue::make_string(p));
  doc.set("protocols", std::move(protocols));
  JsonValue adversaries = JsonValue::make_array();
  for (const char* kind :
       {"none", "stochastic", "hotspot", "convoy", "bucket", "lps"})
    adversaries.push_back(JsonValue::make_string(kind));
  doc.set("adversaries", std::move(adversaries));
  JsonValue artifacts = JsonValue::make_array();
  for (const char* a : {"metrics", "trace_hash", "growth"})
    artifacts.push_back(JsonValue::make_string(a));
  doc.set("artifacts", std::move(artifacts));
  return doc;
}

RunSpec Registry::compile(const RunRequest& req) const {
  // Protocol: exactly make_protocol's name table.
  {
    const auto& names = protocol_names();
    if (std::find(names.begin(), names.end(), req.protocol) == names.end())
      throw RequestError(errc::kUnknownProtocol,
                         "unknown protocol \"" + req.protocol + "\"");
  }

  // Topology: named recipe first, then the grammar.  The parse result for
  // grammar specs is shared into the closures (graph copied per cell, the
  // lps gadget handle borrowed by the adversary factory).
  std::shared_ptr<const TopologySpec> topo;
  std::function<Graph()> build;
  if (req.topology.find(':') == std::string::npos) {
    const NamedTopology* entry = nullptr;
    for (const NamedTopology& t : named_)
      if (t.name == req.topology) entry = &t;
    if (entry == nullptr)
      throw RequestError(errc::kUnknownTopology,
                         "unknown topology \"" + req.topology +
                             "\" (no such named recipe; grammar specs "
                             "contain ':')");
    const auto builder = entry->build;
    const std::uint64_t seed = req.seed;
    build = [builder, seed] { return builder(seed); };
  } else {
    try {
      topo = std::make_shared<const TopologySpec>(
          parse_topology_spec(req.topology, req.seed));
    } catch (const std::exception& e) {
      throw RequestError(errc::kUnknownTopology,
                         "bad topology spec \"" + req.topology +
                             "\": " + e.what());
    }
    build = [topo] { return topo->graph; };
  }

  const AdversarySpec& adv = req.adversary;
  const bool is_lps_adv = adv.kind == "lps";
  if (is_lps_adv && (topo == nullptr || !topo->is_lps))
    throw RequestError(errc::kBadParam,
                       "adversary \"lps\" needs an lps:NxM topology, got \"" +
                           req.topology + "\"");
  if (is_lps_adv) {
    const LpsConfig probe = make_lps_config(adv.r);
    if (probe.n != topo->lps_net.n)
      throw RequestError(
          errc::kBadParam,
          "topology lps:" + std::to_string(topo->lps_net.n) +
              "xM does not match n(" + adv.r.str() +
              ") = " + std::to_string(probe.n) + "; use lps:" +
              std::to_string(probe.n) + "xM");
  }
  if ((adv.kind == "stochastic" || adv.kind == "hotspot" ||
       adv.kind == "convoy" || adv.kind == "bucket" || is_lps_adv) &&
      adv.r == Rat(0))
    throw RequestError(errc::kBadParam,
                       "adversary \"" + adv.kind + "\" needs r > 0");

  RunSpec spec;
  spec.name = req.id;
  spec.topology.name = req.topology;
  spec.topology.build = std::move(build);
  spec.protocol = req.protocol;
  spec.seed = req.seed;
  spec.steps = req.steps;
  spec.stop_when_finished = req.stop_when_finished;
  spec.drain_after = req.drain;
  spec.drain_cap = req.drain_cap;
  spec.audit_w = req.audit_w;
  spec.audit_r = req.audit_r;
  spec.artifacts.metrics = req.art_metrics;
  spec.artifacts.trace_hash = req.art_trace_hash;
  spec.artifacts.growth = req.art_growth;
  spec.controls.resume_from = req.resume_from;

  if (adv.kind == "none") {
    spec.adversary = nullptr;
  } else if (adv.kind == "stochastic" || adv.kind == "hotspot") {
    StochasticConfig cfg;
    cfg.w = adv.w;
    cfg.r = adv.r;
    cfg.max_route_len = adv.d;
    cfg.mode = adv.kind == "hotspot" ? StochasticConfig::Mode::kHotspot
                                     : StochasticConfig::Mode::kUniform;
    spec.adversary = [cfg](const Graph& graph,
                           std::uint64_t seed) -> std::unique_ptr<Adversary> {
      StochasticConfig c = cfg;
      c.seed = seed;
      return std::make_unique<StochasticAdversary>(graph, c);
    };
  } else if (adv.kind == "bucket") {
    BucketAdversary::Config cfg;
    cfg.burst = adv.burst;
    cfg.rate = adv.r;
    cfg.max_route_len = adv.d;
    spec.adversary = [cfg](const Graph& graph,
                           std::uint64_t seed) -> std::unique_ptr<Adversary> {
      BucketAdversary::Config c = cfg;
      c.seed = seed;
      return std::make_unique<BucketAdversary>(graph, c);
    };
  } else if (adv.kind == "convoy") {
    const std::int64_t w = adv.w;
    const Rat r = adv.r;
    const std::int64_t d = adv.d;
    spec.adversary = [w, r, d](const Graph& graph,
                               std::uint64_t) -> std::unique_ptr<Adversary> {
      const Route path = convoy_route(graph, d);
      if (path.empty())
        throw RequestError(errc::kBadParam,
                           "no forward path from node 0 for the convoy "
                           "adversary on this topology");
      return std::make_unique<ConvoyAdversary>(path, w, r);
    };
  } else if (is_lps_adv) {
    const Rat r = adv.r;
    const std::int64_t iterations = adv.iterations;
    const std::int64_t s_star = adv.s_star;
    // `topo` is captured by both closures: it owns the ChainedGadgets the
    // adversary borrows, and the spec outlives the cell's adversary.
    spec.adversary = [topo, r, iterations](
                         const Graph&,
                         std::uint64_t) -> std::unique_ptr<Adversary> {
      LpsConfig cfg = make_lps_config(r);
      cfg.enforce_s0 = false;
      return std::make_unique<LpsAdversary>(topo->lps_net, cfg, iterations);
    };
    spec.setup = [topo, s_star](Engine& eng, const Graph&) {
      setup_flat_queue(eng, topo->lps_net, 0, s_star);
    };
  } else {
    throw RequestError(errc::kUnknownAdversary,
                       "unknown adversary kind \"" + adv.kind + "\"");
  }

  return spec;
}

}  // namespace serve
}  // namespace aqt
