#include "aqt/serve/request.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {
namespace serve {
namespace {

[[noreturn]] void bad(const char* code, const std::string& where,
                      const std::string& what) {
  throw RequestError(code, where + ": " + what);
}

/// Field extraction helpers: every mis-typed field reports SRV004 with the
/// field name, every missing required field SRV003.
const JsonValue& need(const JsonValue& doc, const std::string& where,
                      const char* key) {
  const JsonValue* v = doc.find(key);
  if (v == nullptr)
    bad(errc::kMissingField, where,
        std::string("missing required field \"") + key + "\"");
  return *v;
}

std::string need_string(const JsonValue& v, const std::string& where,
                        const char* key) {
  if (!v.is_string())
    bad(errc::kBadField, where, std::string("\"") + key + "\" must be a string");
  return v.as_string();
}

std::int64_t need_int(const JsonValue& v, const std::string& where,
                      const char* key, std::int64_t lo, std::int64_t hi) {
  if (!v.is_int())
    bad(errc::kBadField, where,
        std::string("\"") + key + "\" must be an integer");
  const std::int64_t n = v.as_int();
  if (n < lo || n > hi)
    bad(errc::kBadField, where,
        std::string("\"") + key + "\" = " + std::to_string(n) +
            " out of range [" + std::to_string(lo) + ", " +
            std::to_string(hi) + "]");
  return n;
}

bool need_bool(const JsonValue& v, const std::string& where,
               const char* key) {
  if (!v.is_bool())
    bad(errc::kBadField, where,
        std::string("\"") + key + "\" must be a boolean");
  return v.as_bool();
}

Rat need_rat(const JsonValue& v, const std::string& where, const char* key) {
  if (!v.is_string())
    bad(errc::kBadField, where,
        std::string("\"") + key +
            "\" must be a rational string such as \"1/4\"");
  try {
    const Rat r = Rat::parse(v.as_string());
    if (r < Rat(0))
      bad(errc::kBadField, where,
          std::string("\"") + key + "\" must be non-negative");
    return r;
  } catch (const RequestError&) {
    throw;
  } catch (const std::exception&) {
    bad(errc::kBadField, where,
        std::string("\"") + key + "\" = \"" + v.as_string() +
            "\" is not a valid rational");
  }
}

void reject_unknown_keys(const JsonValue& obj, const std::string& where,
                         const char* what,
                         const std::vector<std::string>& known) {
  for (const auto& member : obj.members()) {
    if (std::find(known.begin(), known.end(), member.first) == known.end())
      bad(errc::kUnknownField, where,
          std::string("unknown ") + what + " field \"" + member.first + "\"");
  }
}

AdversarySpec parse_adversary(const JsonValue& v, const std::string& where) {
  if (!v.is_object())
    bad(errc::kBadField, where, "\"adversary\" must be an object");
  AdversarySpec adv;
  adv.kind = need_string(need(v, where, "kind"), where, "kind");

  // Per-kind parameter tables; defaults come from the AdversarySpec
  // initializers so the canonical form is stable.
  std::vector<std::string> known = {"kind"};
  const bool windowed =
      adv.kind == "stochastic" || adv.kind == "hotspot" || adv.kind == "convoy";
  if (windowed) known.insert(known.end(), {"w", "r", "d"});
  if (adv.kind == "bucket") known.insert(known.end(), {"burst", "r", "d"});
  if (adv.kind == "lps") known.insert(known.end(), {"r", "iterations", "s_star"});
  if (adv.kind != "none" && adv.kind != "stochastic" &&
      adv.kind != "hotspot" && adv.kind != "convoy" && adv.kind != "bucket" &&
      adv.kind != "lps") {
    // Unknown kinds are the registry's domain (SRV008) so the message can
    // list what IS known; raise it here with the same code for locality.
    bad(errc::kUnknownAdversary, where,
        "unknown adversary kind \"" + adv.kind +
            "\" (known: none stochastic hotspot convoy bucket lps)");
  }
  reject_unknown_keys(v, where, "adversary", known);

  if (const JsonValue* f = v.find("w"))
    adv.w = need_int(*f, where, "w", 1, 1000000);
  if (const JsonValue* f = v.find("r")) adv.r = need_rat(*f, where, "r");
  if (const JsonValue* f = v.find("d"))
    adv.d = need_int(*f, where, "d", 1, 1000000);
  if (const JsonValue* f = v.find("burst"))
    adv.burst = need_int(*f, where, "burst", 1, 1000000);
  if (const JsonValue* f = v.find("iterations"))
    adv.iterations = need_int(*f, where, "iterations", 1, 1000000);
  if (const JsonValue* f = v.find("s_star"))
    adv.s_star = need_int(*f, where, "s_star", 1, 100000000);
  return adv;
}

}  // namespace

RunRequest parse_run_request(const JsonValue& doc, const std::string& where) {
  if (!doc.is_object())
    bad(errc::kBadJson, where, "request must be a JSON object");

  const JsonValue* version = doc.find("aqt_run_request");
  if (version == nullptr)
    bad(errc::kBadVersion, where,
        "missing \"aqt_run_request\" version field");
  if (!version->is_int() || version->as_int() != kRunRequestVersion)
    bad(errc::kBadVersion, where,
        "unsupported request version (this build speaks version " +
            std::to_string(kRunRequestVersion) + ")");

  reject_unknown_keys(
      doc, where, "request",
      {"aqt_run_request", "id", "topology", "protocol", "adversary", "seed",
       "steps", "stop_when_finished", "drain", "drain_cap", "audit",
       "artifacts", "deadline_ms", "resume_from"});

  RunRequest req;
  if (const JsonValue* f = doc.find("id")) {
    req.id = need_string(*f, where, "id");
    if (req.id.size() > 200)
      bad(errc::kBadField, where, "\"id\" longer than 200 bytes");
  }
  req.topology = need_string(need(doc, where, "topology"), where, "topology");
  req.protocol = need_string(need(doc, where, "protocol"), where, "protocol");
  req.adversary = parse_adversary(need(doc, where, "adversary"), where);
  if (const JsonValue* f = doc.find("seed")) {
    if (!f->is_int() || f->as_int() < 0)
      bad(errc::kBadField, where, "\"seed\" must be a non-negative integer");
    req.seed = static_cast<std::uint64_t>(f->as_int());
  }
  req.steps = need_int(need(doc, where, "steps"), where, "steps", 1,
                       1000000000000LL);
  if (const JsonValue* f = doc.find("stop_when_finished"))
    req.stop_when_finished = need_bool(*f, where, "stop_when_finished");
  if (const JsonValue* f = doc.find("drain"))
    req.drain = need_bool(*f, where, "drain");
  if (const JsonValue* f = doc.find("drain_cap"))
    req.drain_cap = need_int(*f, where, "drain_cap", 1, 1000000000000LL);

  if (const JsonValue* f = doc.find("audit")) {
    if (!f->is_object())
      bad(errc::kBadField, where, "\"audit\" must be an object");
    reject_unknown_keys(*f, where, "audit", {"w", "r"});
    const JsonValue* r = f->find("r");
    if (r == nullptr)
      bad(errc::kMissingField, where, "\"audit\" needs at least \"r\"");
    req.audit_r = need_rat(*r, where, "audit.r");
    if (const JsonValue* w = f->find("w"))
      req.audit_w = need_int(*w, where, "audit.w", 1, 1000000000LL);
  }

  if (const JsonValue* f = doc.find("artifacts")) {
    if (!f->is_array())
      bad(errc::kBadField, where,
          "\"artifacts\" must be an array of artifact names");
    req.art_metrics = req.art_trace_hash = req.art_growth = false;
    for (const JsonValue& item : f->items()) {
      const std::string name = need_string(item, where, "artifacts[]");
      if (name == "metrics")
        req.art_metrics = true;
      else if (name == "trace_hash")
        req.art_trace_hash = true;
      else if (name == "growth")
        req.art_growth = true;
      else
        bad(errc::kBadField, where,
            "unknown artifact \"" + name +
                "\" (known: metrics trace_hash growth)");
    }
  }

  if (const JsonValue* f = doc.find("deadline_ms")) {
    req.deadline_ms = static_cast<std::uint64_t>(
        need_int(*f, where, "deadline_ms", 0, 86400000LL));
  }
  if (const JsonValue* f = doc.find("resume_from"))
    req.resume_from = need_string(*f, where, "resume_from");

  return req;
}

RunRequest parse_run_request(const std::string& text,
                             const std::string& where) {
  JsonValue doc;
  try {
    doc = parse_json(text, where);
  } catch (const PreconditionError& e) {
    throw RequestError(errc::kBadJson, e.what());
  }
  return parse_run_request(doc, where);
}

JsonValue run_request_to_json(const RunRequest& req) {
  JsonValue doc = JsonValue::make_object();
  doc.set("aqt_run_request", JsonValue::make_int(req.version));
  if (!req.id.empty()) doc.set("id", JsonValue::make_string(req.id));
  doc.set("topology", JsonValue::make_string(req.topology));
  doc.set("protocol", JsonValue::make_string(req.protocol));

  JsonValue adv = JsonValue::make_object();
  adv.set("kind", JsonValue::make_string(req.adversary.kind));
  const std::string& kind = req.adversary.kind;
  if (kind == "stochastic" || kind == "hotspot" || kind == "convoy") {
    adv.set("w", JsonValue::make_int(req.adversary.w));
    adv.set("r", JsonValue::make_string(req.adversary.r.str()));
    adv.set("d", JsonValue::make_int(req.adversary.d));
  } else if (kind == "bucket") {
    adv.set("burst", JsonValue::make_int(req.adversary.burst));
    adv.set("r", JsonValue::make_string(req.adversary.r.str()));
    adv.set("d", JsonValue::make_int(req.adversary.d));
  } else if (kind == "lps") {
    adv.set("r", JsonValue::make_string(req.adversary.r.str()));
    adv.set("iterations", JsonValue::make_int(req.adversary.iterations));
    adv.set("s_star", JsonValue::make_int(req.adversary.s_star));
  }
  doc.set("adversary", std::move(adv));

  doc.set("seed", JsonValue::make_int(static_cast<std::int64_t>(req.seed)));
  doc.set("steps", JsonValue::make_int(req.steps));
  doc.set("stop_when_finished", JsonValue::make_bool(req.stop_when_finished));
  doc.set("drain", JsonValue::make_bool(req.drain));
  doc.set("drain_cap", JsonValue::make_int(req.drain_cap));

  if (req.audit_r.has_value()) {
    JsonValue audit = JsonValue::make_object();
    if (req.audit_w.has_value())
      audit.set("w", JsonValue::make_int(*req.audit_w));
    audit.set("r", JsonValue::make_string(req.audit_r->str()));
    doc.set("audit", std::move(audit));
  }

  JsonValue artifacts = JsonValue::make_array();
  if (req.art_metrics)
    artifacts.push_back(JsonValue::make_string("metrics"));
  if (req.art_trace_hash)
    artifacts.push_back(JsonValue::make_string("trace_hash"));
  if (req.art_growth) artifacts.push_back(JsonValue::make_string("growth"));
  doc.set("artifacts", std::move(artifacts));

  if (req.deadline_ms != 0)
    doc.set("deadline_ms",
            JsonValue::make_int(static_cast<std::int64_t>(req.deadline_ms)));
  if (!req.resume_from.empty())
    doc.set("resume_from", JsonValue::make_string(req.resume_from));
  return doc;
}

std::string canonical_request_json(const RunRequest& req) {
  return write_json(run_request_to_json(req));
}

}  // namespace serve
}  // namespace aqt
