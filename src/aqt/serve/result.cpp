#include "aqt/serve/result.hpp"

#include <cstdio>

#include "aqt/core/stability.hpp"
#include "aqt/obs/export.hpp"

namespace aqt {
namespace serve {
namespace {

std::string hash_hex(std::uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

JsonValue run_result_to_json(const RunResult& result) {
  JsonValue doc = JsonValue::make_object();
  doc.set("aqt_run_result", JsonValue::make_int(kRunResultVersion));
  doc.set("name", JsonValue::make_string(result.name));
  doc.set("protocol", JsonValue::make_string(result.protocol));
  doc.set("topology", JsonValue::make_string(result.topology));
  doc.set("seed",
          JsonValue::make_int(static_cast<std::int64_t>(result.seed)));
  doc.set("ok", JsonValue::make_bool(result.ok()));
  if (!result.ok())
    doc.set("error", JsonValue::make_string(result.error));
  doc.set("steps_run", JsonValue::make_int(result.steps_run));
  doc.set("injected",
          JsonValue::make_int(static_cast<std::int64_t>(result.injected)));
  doc.set("absorbed",
          JsonValue::make_int(static_cast<std::int64_t>(result.absorbed)));
  doc.set("in_flight",
          JsonValue::make_int(static_cast<std::int64_t>(result.in_flight)));
  doc.set("max_queue",
          JsonValue::make_int(static_cast<std::int64_t>(result.max_queue)));
  doc.set("max_residence", JsonValue::make_int(result.max_residence));
  doc.set("max_latency", JsonValue::make_int(result.max_latency));
  doc.set("verdict", JsonValue::make_string(to_string(result.verdict)));
  doc.set("growth_ratio", JsonValue::make_double(result.growth_ratio));
  doc.set("feasible", JsonValue::make_bool(result.feasible));
  doc.set("trace_hash", JsonValue::make_string(
                            result.trace_hash != 0 ? hash_hex(result.trace_hash)
                                                   : std::string("-")));
  if (result.checkpointed) {
    doc.set("checkpointed", JsonValue::make_bool(true));
    doc.set("checkpoint_step", JsonValue::make_int(result.checkpoint_step));
  }
  if (!result.extra.empty()) {
    JsonValue extra = JsonValue::make_object();
    for (const auto& [key, value] : result.extra)
      extra.set(key, JsonValue::make_double(value));
    doc.set("extra", std::move(extra));
  }
  // obs::to_json is registration-order deterministic, so embedding the
  // export verbatim (as a string) keeps this document byte-stable without
  // re-modelling the metrics schema here.
  if (!result.metrics.families().empty())
    doc.set("metrics", JsonValue::make_string(
                           obs::to_json(result.metrics, "aqt-run")));
  return doc;
}

std::string canonical_result_json(const RunResult& result) {
  return write_json(run_result_to_json(result));
}

}  // namespace serve
}  // namespace aqt
