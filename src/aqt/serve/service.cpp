#include "aqt/serve/service.hpp"

#include <algorithm>
#include <utility>

#include "aqt/util/check.hpp"

namespace aqt {
namespace serve {
namespace {

/// Quantile of an unsorted sample (nearest-rank); 0 for empty samples.
double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  const std::size_t rank = std::min(
      xs.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(xs.size())));
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(rank),
                   xs.end());
  return xs[rank];
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kActive: return "active";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadline: return "deadline";
    case JobState::kCheckpointed: return "checkpointed";
    case JobState::kShed: return "shed";
  }
  return "?";
}

Service::Service(const Registry& registry, ServiceConfig config)
    : registry_(registry), config_(std::move(config)) {
  AQT_REQUIRE(config_.workers >= 1, "Service needs at least one worker");
  AQT_REQUIRE(config_.queue_cap >= 1, "Service needs queue_cap >= 1");
  paused_ = config_.start_paused;
  workers_.reserve(config_.workers);
  for (unsigned w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
  monitor_ = std::thread([this] { monitor_loop(); });
}

Service::~Service() { drain(); }

std::uint64_t Service::submit(const std::string& client,
                              const RunRequest& request,
                              CompletionFn on_done) {
  AQT_REQUIRE(on_done != nullptr, "Service::submit needs a completion fn");
  // Compile outside the lock: pure, and the expensive part (topology
  // parse) must never block the scheduler.
  RunSpec spec = registry_.compile(request);

  auto job = std::make_shared<Job>();
  job->client = client;
  job->request = request;
  job->spec = std::move(spec);
  job->cancel_flag = std::make_shared<std::atomic<bool>>(false);
  job->on_done = std::move(on_done);
  job->spec.controls.cancel = job->cancel_flag;
  job->spec.controls.slice_steps = config_.slice_steps;
  job->submitted = std::chrono::steady_clock::now();
  const std::uint64_t deadline_ms =
      request.deadline_ms != 0 ? request.deadline_ms
                               : config_.default_deadline_ms;
  job->deadline = deadline_ms != 0
                      ? job->submitted + std::chrono::milliseconds(deadline_ms)
                      : std::chrono::steady_clock::time_point::max();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ++rejected_total_;
      throw RequestError(errc::kDraining, "server is draining");
    }
    if (queued_count_ >= config_.queue_cap) {
      ++rejected_total_;
      throw RequestError(errc::kQueueFull,
                         "intake queue is full (" +
                             std::to_string(config_.queue_cap) +
                             " jobs); resubmit later");
    }
    job->id = next_id_++;
    // Checkpoint eligibility decided up front so the path is immutable
    // once a worker can see the spec: run_cell only honors it when the
    // drain arms checkpoint_on_cancel.
    const bool checkpointable =
        !config_.checkpoint_dir.empty() && !request.audit_r.has_value() &&
        request.protocol != "RANDOM" && request.adversary.kind != "lps";
    if (checkpointable) {
      job->spec.controls.checkpoint_to = config_.checkpoint_dir + "/job-" +
                                         std::to_string(job->id) + ".ckpt";
      job->spec.controls.checkpoint_on_cancel =
          std::make_shared<std::atomic<bool>>(false);
    }
    if (queues_.find(client) == queues_.end()) rotation_.push_back(client);
    queues_[client].push_back(job);
    ++queued_count_;
    jobs_[job->id] = job;
    ++submitted_total_;
  }
  cv_.notify_all();
  return job->id;
}

bool Service::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return false;
  it->second->client_cancelled = true;
  it->second->cancel_flag->store(true, std::memory_order_relaxed);
  return true;
}

void Service::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Service::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

std::size_t Service::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_count_;
}

std::size_t Service::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_count_;
}

std::shared_ptr<Service::Job> Service::next_job_locked() {
  if (rotation_.empty()) return nullptr;
  for (std::size_t probe = 0; probe < rotation_.size(); ++probe) {
    const std::size_t at = (rotation_cursor_ + probe) % rotation_.size();
    auto& queue = queues_[rotation_[at]];
    if (queue.empty()) continue;
    std::shared_ptr<Job> job = queue.front();
    queue.pop_front();
    --queued_count_;
    // Advance past the chosen client so its next job waits one full turn.
    rotation_cursor_ = (at + 1) % rotation_.size();
    return job;
  }
  return nullptr;
}

void Service::finish_job(const std::shared_ptr<Job>& job, JobState state,
                         RunResult result, const std::string& checkpoint_path) {
  JobOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(job->id);
    job->state = state;
    switch (state) {
      case JobState::kDone:
        if (result.ok())
          ++completed_total_;
        else
          ++failed_total_;
        break;
      case JobState::kCancelled: ++cancelled_total_; break;
      case JobState::kDeadline: ++deadline_total_; break;
      case JobState::kCheckpointed: ++checkpointed_total_; break;
      case JobState::kShed: ++shed_total_; break;
      case JobState::kQueued:
      case JobState::kActive: break;  // Not terminal; unreachable.
    }
    outcome.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job->submitted)
            .count();
    if (state != JobState::kShed) latencies_.push_back(outcome.wall_seconds);
  }
  outcome.job = job->id;
  outcome.client = job->client;
  outcome.state = state;
  outcome.result = std::move(result);
  outcome.checkpoint_path = checkpoint_path;
  outcome.start_seq = job->start_seq;
  // Outside the lock: the transport may call back into the service.
  job->on_done(outcome);
}

void Service::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return draining_ || (!paused_ && queued_count_ > 0);
      });
      if (draining_) return;  // drain() sheds the queue itself.
      job = next_job_locked();
      if (job == nullptr) continue;
      job->state = JobState::kActive;
      job->start_seq = ++dispatch_seq_;
      ++active_count_;
    }

    RunResult result = execute_run(job->spec);

    JobState state = JobState::kDone;
    {
      // deadline_hit / client_cancelled are written under mu_ (by
      // monitor_loop and cancel), so they must be read under it too.
      std::lock_guard<std::mutex> lock(mu_);
      --active_count_;
      if (result.checkpointed) {
        state = JobState::kCheckpointed;
      } else if (result.error == "cancelled") {
        state = job->deadline_hit && !job->client_cancelled
                    ? JobState::kDeadline
                    : JobState::kCancelled;
      }
    }
    finish_job(job, state, std::move(result),
               state == JobState::kCheckpointed
                   ? job->spec.controls.checkpoint_to
                   : std::string());
  }
}

void Service::monitor_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Job>> expired;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(20),
                       [this] { return draining_; }))
        return;
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, job] : jobs_) {
        (void)id;
        if (job->state == JobState::kActive && !job->deadline_hit &&
            job->deadline != std::chrono::steady_clock::time_point::max() &&
            now >= job->deadline) {
          job->deadline_hit = true;
          expired.push_back(job);
        }
      }
    }
    for (const auto& job : expired)
      job->cancel_flag->store(true, std::memory_order_relaxed);
  }
}

void Service::drain() {
  std::vector<std::shared_ptr<Job>> shed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // A second drain (destructor after an explicit drain) only needs the
      // joins below to be idempotent; they are — threads are joined once.
    }
    draining_ = true;
    for (auto& [client, queue] : queues_) {
      (void)client;
      for (auto& job : queue) shed.push_back(job);
      queue.clear();
    }
    queued_count_ = 0;
    // Active jobs: arm checkpoint-on-cancel where a checkpoint path was
    // provisioned, then ask everyone to stop at the next slice boundary.
    for (auto& [id, job] : jobs_) {
      (void)id;
      if (job->state != JobState::kActive) continue;
      if (job->spec.controls.checkpoint_on_cancel != nullptr)
        job->spec.controls.checkpoint_on_cancel->store(
            true, std::memory_order_relaxed);
      job->cancel_flag->store(true, std::memory_order_relaxed);
    }
  }
  cv_.notify_all();
  for (const auto& job : shed) {
    RunResult result;
    result.name = job->spec.name.empty()
                      ? job->spec.protocol + "/" + job->spec.topology.name +
                            "/" + std::to_string(job->spec.seed)
                      : job->spec.name;
    result.protocol = job->spec.protocol;
    result.topology = job->spec.topology.name;
    result.seed = job->spec.seed;
    result.error = "shed: server draining";
    finish_job(job, JobState::kShed, std::move(result), std::string());
  }
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  if (monitor_.joinable()) monitor_.join();
}

void Service::collect_metrics(obs::MetricRegistry& registry) const {
  std::lock_guard<std::mutex> lock(mu_);
  registry.gauge("aqt_serve_queue_depth", "Jobs queued, not yet dispatched")
      .set(static_cast<double>(queued_count_));
  registry.gauge("aqt_serve_active_jobs", "Jobs currently executing")
      .set(static_cast<double>(active_count_));
  registry.gauge("aqt_serve_clients", "Distinct clients ever seen")
      .set(static_cast<double>(rotation_.size()));
  registry.gauge("aqt_serve_queue_cap", "Intake queue capacity")
      .set(static_cast<double>(config_.queue_cap));
  registry.gauge("aqt_serve_workers", "Job executor threads")
      .set(static_cast<double>(config_.workers));
  registry
      .counter("aqt_serve_submitted_total", "Jobs accepted into the queue")
      .set(submitted_total_);
  registry
      .counter("aqt_serve_rejected_total",
               "Submits rejected (queue full or draining)")
      .set(rejected_total_);
  registry.counter("aqt_serve_completed_total", "Jobs finished successfully")
      .set(completed_total_);
  registry.counter("aqt_serve_failed_total", "Jobs whose cell errored")
      .set(failed_total_);
  registry.counter("aqt_serve_cancelled_total", "Jobs cancelled by clients")
      .set(cancelled_total_);
  registry
      .counter("aqt_serve_deadline_total", "Jobs stopped at their deadline")
      .set(deadline_total_);
  registry
      .counter("aqt_serve_checkpointed_total",
               "Jobs checkpointed (scheduled or drain)")
      .set(checkpointed_total_);
  registry.counter("aqt_serve_shed_total", "Queued jobs shed by drain")
      .set(shed_total_);
  registry
      .gauge("aqt_serve_job_seconds_p50",
             "Median submit-to-terminal job latency")
      .set(quantile(latencies_, 0.50));
  registry
      .gauge("aqt_serve_job_seconds_p99",
             "99th-percentile submit-to-terminal job latency")
      .set(quantile(latencies_, 0.99));
}

}  // namespace serve
}  // namespace aqt
