// The wire layer of aqt-serve: JSONL-over-TCP job transport plus a minimal
// HTTP endpoint for Prometheus scrapes.
//
// Protocol (one JSON object per line, both directions; see docs/TOOLS.md):
//
//   client -> server   {"op": "submit", "request": {"aqt_run_request": 1, ...}}
//   server -> client   {"ok": true, "op": "submit", "job": 7}
//   server -> client   {"event": "result", "job": 7, "state": "done",
//                       "result": {...}, "result_canonical": "..."}
//
// Ops: hello, submit, cancel, status, catalog, metrics, pause, resume,
// ping.  Errors are {"ok": false, "op": ..., "code": "SRVnnn", "error":
// ...} with the stable codes from request.hpp.  Events (result /
// checkpointed job terminations) are pushed asynchronously to the
// connection that submitted the job; `result_canonical` carries the exact
// bytes `aqt-sim --results-dir` would write for the same request, so a
// client can persist a served artifact byte-identical to an offline run
// without re-serializing.
//
// Threading: one reader thread per connection; completion callbacks arrive
// on service worker threads and serialize onto the socket through a
// per-connection write lock.  stop() is idempotent: close intake, drain
// the service (every pending job reaches a terminal event first), then
// close connections and join.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aqt/serve/service.hpp"

namespace aqt {
namespace serve {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// Job port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 4070;
  /// Prometheus text endpoint (GET /metrics); 0 disables it.
  std::uint16_t metrics_port = 0;
};

class Server {
 public:
  Server(Service& service, const Registry& registry, ServerConfig config);
  ~Server();  ///< Implies stop().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts accepting.  Throws std::runtime_error on
  /// bind failure (port in use, bad address).
  void start();

  /// Bound job port (after start(); resolves ephemeral binds).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// Bound metrics port; 0 when the metrics endpoint is disabled.
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  /// Graceful shutdown: stop accepting, drain the service (terminal events
  /// still reach clients), then close connections and join all threads.
  void stop();

  /// Current Prometheus exposition (also what GET /metrics serves).
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Connection;

  void accept_loop();
  void metrics_loop();
  void handle_connection(const std::shared_ptr<Connection>& conn);
  /// Executes one parsed op; returns the reply document.
  JsonValue handle_op(const std::shared_ptr<Connection>& conn,
                      const JsonValue& doc);

  Service& service_;
  const Registry& registry_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  int metrics_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::thread accept_thread_;
  std::thread metrics_thread_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
};

}  // namespace serve
}  // namespace aqt
