// Hardened JSON document model for the serve wire protocol.
//
// The serve layer talks to untrusted clients in JSON-per-line, so unlike
// the write-only json_escape helpers scattered through obs/lint/verify it
// needs a full *reader*: a strict, bounded, recursive-descent parser into
// a small DOM (JsonValue) that request.cpp then shapes into RunRequests.
// The discipline matches the repo's other hardened parsers (obs/events,
// trace/run_trace, audit's baseline reader): malformed, truncated,
// oversized, or too-deep input raises PreconditionError naming the source
// and byte offset — never an abort, never a hang, never UB.
//
// Writing is canonical by construction: objects serialize their members in
// insertion order, numbers through a fixed format, strings through one
// escaper — so two processes that build the same JsonValue emit the same
// bytes.  That is the property the round-trip contract rides on (a
// RunRequest served by aqt-serve and the same file run offline through
// aqt-sim produce byte-identical canonical forms).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace aqt {
namespace serve {

/// Parser guardrails: callers never pay more than this for garbage input.
inline constexpr std::size_t kMaxJsonBytes = 1 << 20;  ///< 1 MiB per doc.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// One JSON value.  Objects keep member order (insertion order = emission
/// order); duplicate keys are a parse error, not a silent overwrite.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; AQT_REQUIRE on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  ///< Accepts kInt too.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Array building.
  void push_back(JsonValue v);

  /// Object building: appends, or replaces an existing member in place
  /// (order of first insertion is preserved).
  void set(const std::string& key, JsonValue v);

  /// Object lookup; nullptr when absent (or when this is not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Strict parse of exactly one JSON document (trailing garbage rejected).
/// `where` names the source in diagnostics.  Throws PreconditionError.
JsonValue parse_json(const std::string& text, const std::string& where);

/// Canonical single-line serialization (no whitespace, members in stored
/// order, "%.17g" doubles, lowercase \uXXXX escapes for control bytes).
std::string write_json(const JsonValue& value);
void write_json(const JsonValue& value, std::ostream& os);

/// The shared string escaper (also used for error messages in responses).
std::string json_escape_string(const std::string& s);

}  // namespace serve
}  // namespace aqt
