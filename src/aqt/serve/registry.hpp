// The name -> recipe registry and the RunRequest -> RunSpec compiler.
//
// This is the seam between the declarative wire API (request.hpp: names
// and parameters) and the closure-based executor API (runner/run_spec.hpp:
// recipes and factories).  The registry owns three name tables:
//
//   topologies  — every spec the topology grammar accepts ("ring:8",
//                 "grid:4x4", ..., see topology/spec.hpp), plus named
//                 recipes registered in-process (register_topology), so
//                 deployments can expose e.g. "prod-backbone" without
//                 clients knowing how it is built;
//   protocols   — exactly make_protocol's names (core/protocol.cpp);
//   adversaries — the parameterized kinds of request.hpp.
//
// compile() is a *pure function* of (request, registry contents): it
// resolves names, validates cross-field consistency (an "lps" adversary
// needs an lps:NxM topology; a convoy needs a forward path), and emits a
// RunSpec whose closures capture only values.  Purity is what makes the
// serve/offline byte-identity contract hold — aqt-serve and `aqt-sim
// --batch` both call this one compiler, then execute_run does the rest.
//
// Name-resolution failures throw RequestError with the stable codes
// SRV006 (topology), SRV007 (protocol), SRV008 (adversary kind), SRV009
// (parameters inconsistent with the resolved names).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/json.hpp"
#include "aqt/serve/request.hpp"

namespace aqt {
namespace serve {

/// A named topology recipe: seed-parameterized so randomized families
/// (e.g. dag:N) stay reproducible per cell.
struct NamedTopology {
  std::string name;
  std::string description;
  std::function<Graph(std::uint64_t seed)> build;
};

class Registry {
 public:
  /// The built-in tables: the full topology grammar, make_protocol's
  /// names, and the adversary kinds of request.hpp.
  Registry();

  /// Registers (or replaces) a named topology recipe.  Names must not
  /// collide with the grammar (anything containing ':' is reserved for
  /// grammar specs).  See docs/EXTENDING.md.
  void register_topology(NamedTopology entry);

  [[nodiscard]] bool has_topology(const std::string& name) const;
  [[nodiscard]] const std::vector<NamedTopology>& named_topologies() const {
    return named_;
  }

  /// Machine-readable catalog of everything compile() accepts — served to
  /// clients so they can enumerate the API surface instead of guessing.
  [[nodiscard]] JsonValue catalog() const;

  /// RunRequest -> RunSpec.  Pure; throws RequestError (SRV006..SRV009).
  [[nodiscard]] RunSpec compile(const RunRequest& req) const;

 private:
  std::vector<NamedTopology> named_;
};

}  // namespace serve
}  // namespace aqt
