// Canonical result serialization — the single writer of run outcomes.
//
// The end-to-end determinism contract says a job served by aqt-serve must
// be byte-identical to the same job run offline by aqt-sim.  The cheapest
// way to make that true (and keep it true) is to have exactly ONE place
// that turns a RunResult into bytes; aqt-serve's result events and
// `aqt-sim --batch --results-dir` both call canonical_result_json and
// diff cleanly.
//
// Field order is fixed; the trace hash is the 16-hex-digit form used by
// run-trace footers; `metrics` (present only when the artifact was
// requested) embeds the obs Prometheus-JSON export as a string, verbatim,
// because obs::to_json is already registration-order deterministic.
#pragma once

#include <string>

#include "aqt/runner/run_spec.hpp"
#include "aqt/serve/json.hpp"

namespace aqt {
namespace serve {

inline constexpr int kRunResultVersion = 1;

JsonValue run_result_to_json(const RunResult& result);

/// One line, no trailing newline; byte-stable across processes.
std::string canonical_result_json(const RunResult& result);

}  // namespace serve
}  // namespace aqt
