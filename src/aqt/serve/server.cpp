#include "aqt/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "aqt/obs/export.hpp"
#include "aqt/serve/result.hpp"

namespace aqt {
namespace serve {
namespace {

/// Creates a listening TCP socket; returns {fd, bound_port}.
std::pair<int, std::uint16_t> make_listener(const std::string& address,
                                            std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad bind address '" + address + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("bind " + address + ":" + std::to_string(port) +
                             ": " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  return {fd, ntohs(bound.sin_port)};
}

void send_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // Peer gone; the reader thread notices and exits.
    off += static_cast<std::size_t>(n);
  }
}

JsonValue error_reply(const std::string& op, const std::string& code,
                      const std::string& message) {
  JsonValue doc = JsonValue::make_object();
  doc.set("ok", JsonValue::make_bool(false));
  doc.set("op", JsonValue::make_string(op));
  doc.set("code", JsonValue::make_string(code));
  doc.set("error", JsonValue::make_string(message));
  return doc;
}

JsonValue ok_reply(const std::string& op) {
  JsonValue doc = JsonValue::make_object();
  doc.set("ok", JsonValue::make_bool(true));
  doc.set("op", JsonValue::make_string(op));
  return doc;
}

}  // namespace

/// One client socket.  The write lock serializes the reader thread's
/// replies with completion events arriving from service worker threads;
/// `closed` makes late events after a disconnect harmless no-ops.
struct Server::Connection {
  int fd = -1;
  std::string client;  ///< Scheduling identity (hello override or conn-N).
  std::mutex write_mu;
  bool closed = false;
  std::thread reader;

  void send_line(const std::string& json) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed) return;
    std::string line = json;
    line.push_back('\n');
    send_all(fd, line.data(), line.size());
  }

  void close_socket() {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed) return;
    closed = true;
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
};

Server::Server(Service& service, const Registry& registry,
               ServerConfig config)
    : service_(service), registry_(registry), config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  auto [fd, port] = make_listener(config_.bind_address, config_.port);
  listen_fd_ = fd;
  port_ = port;
  if (config_.metrics_port != 0) {
    auto [mfd, mport] =
        make_listener(config_.bind_address, config_.metrics_port);
    metrics_fd_ = mfd;
    metrics_port_ = mport;
    metrics_thread_ = std::thread([this] { metrics_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // 1. Stop intake: no new connections, no new submits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_fd_ >= 0) {
    ::shutdown(metrics_fd_, SHUT_RDWR);
    ::close(metrics_fd_);
  }
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // 2. Drain: every queued/active job reaches a terminal callback, which
  //    pushes its event to the (still open) submitting connection.
  service_.drain();
  // 3. Now the sockets can go.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) conn->close_socket();
  for (const auto& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
}

std::string Server::metrics_text() const {
  obs::MetricRegistry registry;
  service_.collect_metrics(registry);
  return obs::to_prometheus(registry);
}

void Server::accept_loop() {
  std::uint64_t conn_seq = 0;
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // Listener closed by stop().
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client = "conn-" + std::to_string(++conn_seq);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { handle_connection(conn); });
  }
}

void Server::metrics_loop() {
  for (;;) {
    const int fd = ::accept(metrics_fd_, nullptr, nullptr);
    if (fd < 0) return;
    // Minimal HTTP: read whatever headers arrived, answer one GET, close.
    char buf[2048];
    const ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      const std::string body = metrics_text();
      const std::string head =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n";
      send_all(fd, head.data(), head.size());
      send_all(fd, body.data(), body.size());
    }
    ::close(fd);
  }
}

void Server::handle_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxJsonBytes * 2) break;  // Protocol abuse.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      JsonValue reply;
      try {
        const JsonValue doc = parse_json(line, "request line");
        reply = handle_op(conn, doc);
      } catch (const RequestError& e) {
        reply = error_reply("?", e.code(), e.what());
      } catch (const std::exception& e) {
        reply = error_reply("?", errc::kBadJson, e.what());
      }
      conn->send_line(write_json(reply));
    }
    buffer.erase(0, start);
  }
  conn->close_socket();
}

JsonValue Server::handle_op(const std::shared_ptr<Connection>& conn,
                            const JsonValue& doc) {
  if (doc.kind() != JsonValue::Kind::kObject)
    throw RequestError(errc::kBadOp, "protocol envelope must be an object");
  const JsonValue* op_field = doc.find("op");
  if (op_field == nullptr ||
      op_field->kind() != JsonValue::Kind::kString)
    throw RequestError(errc::kBadOp, "envelope needs a string \"op\"");
  const std::string op = op_field->as_string();

  if (op == "ping") return ok_reply("ping");

  if (op == "hello") {
    if (const JsonValue* name = doc.find("client")) {
      if (name->kind() != JsonValue::Kind::kString ||
          name->as_string().empty())
        throw RequestError(errc::kBadOp, "hello.client must be a non-empty "
                                         "string");
      conn->client = name->as_string();
    }
    JsonValue reply = ok_reply("hello");
    reply.set("aqt_serve", JsonValue::make_int(1));
    reply.set("run_request_version",
              JsonValue::make_int(kRunRequestVersion));
    reply.set("client", JsonValue::make_string(conn->client));
    return reply;
  }

  if (op == "catalog") {
    JsonValue reply = ok_reply("catalog");
    reply.set("catalog", registry_.catalog());
    return reply;
  }

  if (op == "status") {
    JsonValue reply = ok_reply("status");
    reply.set("draining", JsonValue::make_bool(service_.draining()));
    reply.set("queue_depth", JsonValue::make_int(static_cast<std::int64_t>(
                                 service_.queue_depth())));
    reply.set("active_jobs", JsonValue::make_int(static_cast<std::int64_t>(
                                 service_.active_jobs())));
    return reply;
  }

  if (op == "metrics") {
    JsonValue reply = ok_reply("metrics");
    reply.set("prometheus", JsonValue::make_string(metrics_text()));
    return reply;
  }

  if (op == "pause") {
    service_.pause();
    return ok_reply("pause");
  }
  if (op == "resume") {
    service_.resume();
    return ok_reply("resume");
  }

  if (op == "cancel") {
    const JsonValue* job = doc.find("job");
    if (job == nullptr || job->kind() != JsonValue::Kind::kInt ||
        job->as_int() < 1)
      throw RequestError(errc::kBadOp, "cancel needs a positive \"job\"");
    if (!service_.cancel(static_cast<std::uint64_t>(job->as_int())))
      throw RequestError(errc::kUnknownJob,
                         "job " + std::to_string(job->as_int()) +
                             " is unknown or already terminal");
    JsonValue reply = ok_reply("cancel");
    reply.set("job", JsonValue::make_int(job->as_int()));
    return reply;
  }

  if (op == "submit") {
    const JsonValue* request = doc.find("request");
    if (request == nullptr)
      throw RequestError(errc::kBadOp, "submit needs a \"request\" object");
    const RunRequest run_request =
        parse_run_request(*request, "submit.request");
    const std::string client = conn->client;
    try {
      const std::uint64_t job = service_.submit(
          client, run_request, [conn](const JobOutcome& outcome) {
            JsonValue event = JsonValue::make_object();
            event.set("event", JsonValue::make_string("result"));
            event.set("job", JsonValue::make_int(
                                 static_cast<std::int64_t>(outcome.job)));
            event.set("state",
                      JsonValue::make_string(to_string(outcome.state)));
            event.set("start_seq",
                      JsonValue::make_int(
                          static_cast<std::int64_t>(outcome.start_seq)));
            event.set("wall_seconds",
                      JsonValue::make_double(outcome.wall_seconds));
            if (!outcome.checkpoint_path.empty())
              event.set("checkpoint_path",
                        JsonValue::make_string(outcome.checkpoint_path));
            event.set("result", run_result_to_json(outcome.result));
            // The exact bytes aqt-sim --results-dir writes for this
            // request: clients persist these verbatim for byte-identity.
            event.set("result_canonical",
                      JsonValue::make_string(
                          canonical_result_json(outcome.result)));
            conn->send_line(write_json(event));
          });
      JsonValue reply = ok_reply("submit");
      reply.set("job",
                JsonValue::make_int(static_cast<std::int64_t>(job)));
      reply.set("client", JsonValue::make_string(client));
      return reply;
    } catch (const RequestError&) {
      throw;  // SRV010/SRV013/compile codes go to the client verbatim.
    }
  }

  throw RequestError(errc::kBadOp, "unknown op '" + op + "'");
}

}  // namespace serve
}  // namespace aqt
