#include "aqt/topology/generators.hpp"

#include <string>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

std::string num_name(const char* prefix, std::int64_t i) {
  return std::string(prefix) + std::to_string(i);
}

}  // namespace

Graph make_line(std::int64_t len) {
  AQT_REQUIRE(len >= 1, "line length must be >= 1");
  Graph g;
  NodeId prev = g.add_node("v0");
  for (std::int64_t i = 1; i <= len; ++i) {
    const NodeId next = g.add_node(num_name("v", i));
    g.add_edge(prev, next, num_name("l", i - 1));
    prev = next;
  }
  return g;
}

Graph make_ring(std::int64_t len) {
  AQT_REQUIRE(len >= 2, "ring length must be >= 2");
  Graph g;
  for (std::int64_t i = 0; i < len; ++i) g.add_node(num_name("v", i));
  for (std::int64_t i = 0; i < len; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % len),
               num_name("r", i));
  }
  return g;
}

Graph make_bidirectional_ring(std::int64_t len) {
  AQT_REQUIRE(len >= 2, "ring length must be >= 2");
  Graph g;
  for (std::int64_t i = 0; i < len; ++i) g.add_node(num_name("v", i));
  for (std::int64_t i = 0; i < len; ++i) {
    const auto a = static_cast<NodeId>(i);
    const auto b = static_cast<NodeId>((i + 1) % len);
    g.add_edge(a, b, num_name("cw", i));
    g.add_edge(b, a, num_name("ccw", i));
  }
  return g;
}

Graph make_grid(std::int64_t rows, std::int64_t cols) {
  AQT_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be >= 1");
  Graph g;
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      g.add_node("v" + std::to_string(r) + "_" + std::to_string(c));
  const auto id = [&](std::int64_t r, std::int64_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        g.add_edge(id(r, c), id(r, c + 1),
                   "h" + std::to_string(r) + "_" + std::to_string(c));
      if (r + 1 < rows)
        g.add_edge(id(r, c), id(r + 1, c),
                   "d" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  return g;
}

Graph make_in_tree(std::int64_t depth) {
  AQT_REQUIRE(depth >= 1, "tree depth must be >= 1");
  Graph g;
  // Level 0 is the root; level d has 2^d nodes; edges point parent-ward.
  std::int64_t index = 0;
  std::vector<std::vector<NodeId>> levels;
  for (std::int64_t d = 0; d <= depth; ++d) {
    levels.emplace_back();
    const std::int64_t width = std::int64_t{1} << d;
    for (std::int64_t i = 0; i < width; ++i)
      levels.back().push_back(g.add_node(num_name("t", index++)));
  }
  std::int64_t edge_idx = 0;
  for (std::int64_t d = 1; d <= depth; ++d) {
    for (std::size_t i = 0; i < levels[d].size(); ++i) {
      g.add_edge(levels[d][i], levels[d - 1][i / 2],
                 num_name("up", edge_idx++));
    }
  }
  return g;
}

Graph make_random_dag(std::int64_t nodes, double p, Rng& rng) {
  AQT_REQUIRE(nodes >= 2, "random DAG needs >= 2 nodes");
  AQT_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g;
  for (std::int64_t i = 0; i < nodes; ++i) g.add_node(num_name("v", i));
  std::int64_t edge_idx = 0;
  for (std::int64_t i = 0; i + 1 < nodes; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
               num_name("spine", i));
    for (std::int64_t j = i + 2; j < nodes; ++j) {
      if (rng.chance(p)) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j),
                   num_name("x", edge_idx++));
      }
    }
  }
  return g;
}

Graph make_hypercube(std::int64_t dim) {
  AQT_REQUIRE(dim >= 1 && dim <= 20, "hypercube dimension out of range");
  Graph g;
  const std::int64_t n = std::int64_t{1} << dim;
  for (std::int64_t v = 0; v < n; ++v) g.add_node(num_name("v", v));
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::int64_t b = 0; b < dim; ++b) {
      const std::int64_t u = v ^ (std::int64_t{1} << b);
      g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(u),
                 "h" + std::to_string(v) + "_" + std::to_string(b));
    }
  }
  return g;
}

Graph make_torus(std::int64_t rows, std::int64_t cols) {
  AQT_REQUIRE(rows >= 2 && cols >= 2, "torus dimensions must be >= 2");
  Graph g;
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      g.add_node("v" + std::to_string(r) + "_" + std::to_string(c));
  const auto id = [&](std::int64_t r, std::int64_t c) {
    return static_cast<NodeId>(((r + rows) % rows) * cols +
                               ((c + cols) % cols));
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, c + 1),
                 "h" + std::to_string(r) + "_" + std::to_string(c));
      g.add_edge(id(r, c), id(r + 1, c),
                 "d" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  return g;
}

Graph make_parallel_edges(std::int64_t count) {
  AQT_REQUIRE(count >= 1, "need >= 1 parallel edges");
  Graph g;
  const NodeId a = g.add_node("a");
  const NodeId b = g.add_node("b");
  for (std::int64_t i = 0; i < count; ++i)
    g.add_edge(a, b, num_name("p", i));
  return g;
}

}  // namespace aqt
