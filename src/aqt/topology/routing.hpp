// Route-finding helpers for building adversaries and examples: shortest
// paths (BFS over edges) and simple-path enumeration on small graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// Shortest (fewest-edges) simple route from `from` to `to`; nullopt if
/// unreachable.  Deterministic: ties break toward lower edge ids.
std::optional<Route> shortest_route(const Graph& g, NodeId from, NodeId to);

/// Convenience overload on node names.
std::optional<Route> shortest_route(const Graph& g, std::string_view from,
                                    std::string_view to);

/// Number of edges on the longest shortest-path between any node pair that
/// can reach one another (the graph's directed hop-diameter); 0 when no
/// node reaches any other.
std::int64_t hop_diameter(const Graph& g);

/// All simple routes from `from` to `to` of at most `max_len` edges, in
/// lexicographic edge-id order.  Exponential in general — intended for
/// small graphs and tests; `limit` caps the result count.
std::vector<Route> all_simple_routes(const Graph& g, NodeId from, NodeId to,
                                     std::size_t max_len,
                                     std::size_t limit = 1000);

}  // namespace aqt
