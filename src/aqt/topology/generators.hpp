// Standard network topologies for the stability experiments.
//
// The stability theorems of §4 are universal — any network, any greedy
// protocol — so the experiment suite sweeps a family of structurally
// different graphs.  All generators name nodes/edges deterministically.
#pragma once

#include <cstdint>

#include "aqt/core/graph.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {

/// Directed line v0 -> v1 -> ... -> v(len); `len` edges.
Graph make_line(std::int64_t len);

/// Directed cycle of `len` >= 2 edges.
Graph make_ring(std::int64_t len);

/// Bidirectional ring: both orientations of each of `len` links.
Graph make_bidirectional_ring(std::int64_t len);

/// rows x cols grid with edges pointing right and down (a DAG).
Graph make_grid(std::int64_t rows, std::int64_t cols);

/// Complete binary in-tree of `depth` levels: every edge points toward the
/// root (packets fan in, making contention grow with depth).
Graph make_in_tree(std::int64_t depth);

/// Random DAG on `nodes` vertices; each forward pair (i < j) gets an edge
/// with probability `p`.  A spine i -> i+1 is always present so the graph
/// is connected and has long paths.
Graph make_random_dag(std::int64_t nodes, double p, Rng& rng);

/// Two nodes joined by `count` parallel edges (multigraph stress).
Graph make_parallel_edges(std::int64_t count);

/// Directed hypercube of dimension `dim`: 2^dim nodes; for every node and
/// every bit, one edge to the node with that bit flipped (so each
/// undirected hypercube link appears in both orientations).
Graph make_hypercube(std::int64_t dim);

/// rows x cols torus: grid with wraparound, edges pointing right and down.
Graph make_torus(std::int64_t rows, std::int64_t cols);

}  // namespace aqt
