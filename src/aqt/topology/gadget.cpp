#include "aqt/topology/gadget.hpp"

#include <string>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

std::string gadget_edge_name(std::int64_t k, char path, std::int64_t i) {
  return "g" + std::to_string(k) + "." + path + std::to_string(i);
}

/// Builds one parallel path of `n` edges from `from` to `to`, naming edges
/// g<k>.<path>1..n and interior nodes g<k>.<path>n1..
std::vector<EdgeId> add_parallel_path(Graph& g, std::int64_t k, char path,
                                      std::int64_t n, NodeId from, NodeId to) {
  std::vector<EdgeId> edges;
  edges.reserve(static_cast<std::size_t>(n));
  NodeId prev = from;
  for (std::int64_t i = 1; i <= n; ++i) {
    const NodeId next =
        (i == n) ? to
                 : g.add_node("g" + std::to_string(k) + "." + path + "n" +
                              std::to_string(i));
    edges.push_back(g.add_edge(prev, next, gadget_edge_name(k, path, i)));
    prev = next;
  }
  return edges;
}

ChainedGadgets build_impl(std::int64_t n, std::int64_t gadget_count,
                          bool closed) {
  AQT_REQUIRE(n >= 1, "gadget path length n must be >= 1");
  AQT_REQUIRE(gadget_count >= 1, "gadget count M must be >= 1");

  ChainedGadgets net;
  net.n = n;
  net.gadget_count = gadget_count;
  Graph& g = net.graph;

  // Node chain: s -a1-> U1 =paths=> V1 -a2-> U2 =paths=> ... VM -a(M+1)-> z.
  // The egress of F(k) *is* the ingress of F(k+1) (Definition 3.4), so each
  // iteration creates the e/f paths of gadget k and the shared edge
  // a_{k+1}; a1 is created up front.
  const NodeId s = g.add_node("s");
  NodeId u = g.add_node("u1");
  EdgeId ingress = g.add_edge(s, u, "a1");
  for (std::int64_t k = 1; k <= gadget_count; ++k) {
    const NodeId v = g.add_node("v" + std::to_string(k));

    GadgetEdges ge;
    ge.ingress = ingress;
    ge.e_path = add_parallel_path(g, k, 'e', n, u, v);
    ge.f_path = add_parallel_path(g, k, 'f', n, u, v);

    const NodeId egress_head = (k == gadget_count)
                                   ? g.add_node("z")
                                   : g.add_node("u" + std::to_string(k + 1));
    ge.egress = g.add_edge(v, egress_head, "a" + std::to_string(k + 1));

    ingress = ge.egress;
    u = egress_head;
    net.gadgets.push_back(std::move(ge));
  }

  if (closed) {
    const NodeId z = *g.find_node("z");
    net.back_edge = g.add_edge(z, s, "e0");
  }
  return net;
}

}  // namespace

Route ChainedGadgets::e_route(std::size_t k, std::size_t from_i) const {
  AQT_REQUIRE(k < gadgets.size(), "gadget index out of range");
  AQT_REQUIRE(from_i >= 1 && from_i <= static_cast<std::size_t>(n),
              "e-path position out of range");
  Route r;
  const auto& ge = gadgets[k];
  for (std::size_t i = from_i - 1; i < ge.e_path.size(); ++i)
    r.push_back(ge.e_path[i]);
  r.push_back(ge.egress);
  return r;
}

Route ChainedGadgets::f_route(std::size_t k) const {
  AQT_REQUIRE(k < gadgets.size(), "gadget index out of range");
  Route r;
  const auto& ge = gadgets[k];
  r.push_back(ge.ingress);
  r.insert(r.end(), ge.f_path.begin(), ge.f_path.end());
  r.push_back(ge.egress);
  return r;
}

ChainedGadgets build_chain(std::int64_t n, std::int64_t gadget_count) {
  return build_impl(n, gadget_count, /*closed=*/false);
}

ChainedGadgets build_closed_chain(std::int64_t n, std::int64_t gadget_count) {
  return build_impl(n, gadget_count, /*closed=*/true);
}

std::int64_t lps_longest_route(const ChainedGadgets& net) {
  // Bootstrap packets on F(1) have route a, e1..en, a' (n+2 edges) and are
  // extended by n+1 edges (e'-path + next egress) in each of the M-1
  // subsequent gadgets; long packets injected in gadget k have 2n+3 edges
  // and are extended M-k-1 times.  Both maximize at (n+1)M + 1.
  return (net.n + 1) * net.gadget_count + 1;
}

}  // namespace aqt
