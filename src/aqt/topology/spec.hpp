// Textual topology specs, e.g. "grid:4x4", "ring:16", "lps:9x8".
//
// One grammar shared by tools, benches, and tests:
//   line:N | ring:N | bidiring:N | grid:RxC | torus:RxC | tree:D |
//   hypercube:D | dag:N | parallel:N | lps:NxM
// `dag` uses the supplied seed; `lps` builds the closed gadget chain of
// Fig. 3.2 and also exposes the ChainedGadgets handle.
#pragma once

#include <cstdint>
#include <string>

#include "aqt/core/graph.hpp"
#include "aqt/topology/gadget.hpp"

namespace aqt {

struct TopologySpec {
  Graph graph;
  /// Populated (and is_lps set) only for "lps:NxM" specs.
  ChainedGadgets lps_net;
  bool is_lps = false;
};

/// Parses and builds.  Throws PreconditionError on malformed specs.
TopologySpec parse_topology_spec(const std::string& spec,
                                 std::uint64_t seed = 1);

/// The spec kinds accepted, for help strings.
const std::string& topology_spec_grammar();

}  // namespace aqt
