#include "aqt/topology/routing.hpp"

#include <algorithm>
#include <deque>

#include "aqt/util/check.hpp"

namespace aqt {

std::optional<Route> shortest_route(const Graph& g, NodeId from, NodeId to) {
  AQT_REQUIRE(from < g.node_count() && to < g.node_count(),
              "node id out of range");
  if (from == to) return std::nullopt;  // Routes have >= 1 edge; no loops.
  std::vector<EdgeId> via(g.node_count(), kNoEdge);
  std::vector<bool> seen(g.node_count(), false);
  std::deque<NodeId> frontier{from};
  seen[from] = true;
  while (!frontier.empty()) {
    const NodeId at = frontier.front();
    frontier.pop_front();
    for (const EdgeId e : g.out_edges(at)) {
      const NodeId next = g.head(e);
      if (seen[next]) continue;
      seen[next] = true;
      via[next] = e;
      if (next == to) {
        Route route;
        for (NodeId v = to; v != from; v = g.tail(via[v]))
          route.push_back(via[v]);
        std::reverse(route.begin(), route.end());
        return route;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

std::optional<Route> shortest_route(const Graph& g, std::string_view from,
                                    std::string_view to) {
  const auto f = g.find_node(from);
  const auto t = g.find_node(to);
  AQT_REQUIRE(f && t, "unknown node name");
  return shortest_route(g, *f, *t);
}

std::int64_t hop_diameter(const Graph& g) {
  std::int64_t best = 0;
  for (NodeId from = 0; from < g.node_count(); ++from) {
    // BFS distances from `from`.
    std::vector<std::int64_t> dist(g.node_count(), -1);
    std::deque<NodeId> frontier{from};
    dist[from] = 0;
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop_front();
      for (const EdgeId e : g.out_edges(at)) {
        const NodeId next = g.head(e);
        if (dist[next] >= 0) continue;
        dist[next] = dist[at] + 1;
        best = std::max(best, dist[next]);
        frontier.push_back(next);
      }
    }
  }
  return best;
}

namespace {

void enumerate(const Graph& g, NodeId at, NodeId to, std::size_t max_len,
               std::size_t limit, Route& current, std::vector<bool>& visited,
               std::vector<Route>& out) {
  if (out.size() >= limit) return;
  if (at == to && !current.empty()) {
    out.push_back(current);
    return;
  }
  if (current.size() >= max_len) return;
  for (const EdgeId e : g.out_edges(at)) {
    const NodeId next = g.head(e);
    if (visited[next]) continue;
    visited[next] = true;
    current.push_back(e);
    enumerate(g, next, to, max_len, limit, current, visited, out);
    current.pop_back();
    visited[next] = false;
  }
}

}  // namespace

std::vector<Route> all_simple_routes(const Graph& g, NodeId from, NodeId to,
                                     std::size_t max_len,
                                     std::size_t limit) {
  AQT_REQUIRE(from < g.node_count() && to < g.node_count(),
              "node id out of range");
  std::vector<Route> out;
  Route current;
  std::vector<bool> visited(g.node_count(), false);
  visited[from] = true;
  enumerate(g, from, to, max_len, limit, current, visited, out);
  return out;
}

}  // namespace aqt
