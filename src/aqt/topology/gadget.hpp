// The paper's parametric gadget F_n and its compositions (§3.2, §3.3).
//
// A gadget (Definition 3.4) is a DAG with an ingress edge from a degree-1
// source and an egress edge to a degree-1 sink.  F_n has ingress a, egress
// a', and two parallel directed paths of length n between them: the e-path
// e1..en and the f-path f1..fn (Fig. 3.1).
//
// Daisy-chaining (the "o" operation) identifies the egress of one gadget
// with the ingress of the next; F_n^M is M chained copies.  Theorem 3.17's
// network closes the chain with one extra edge e0 from the head of the last
// egress back to the tail of the first ingress (Fig. 3.2).
//
// Edge naming convention (k = 1-based gadget index):
//   ingress of F(k)        : "a1" for k=1, otherwise the egress of F(k-1)
//   e-path of F(k)         : "g<k>.e1" .. "g<k>.en"
//   f-path of F(k)         : "g<k>.f1" .. "g<k>.fn"
//   egress of F(k)         : "a<k+1>"
//   cycle-closing edge     : "e0"
// so "a<k>" is simultaneously egress of F(k-1) and ingress of F(k), exactly
// the identification Definition 3.4 makes.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// Resolved edge ids of one F_n gadget inside a larger graph.
struct GadgetEdges {
  EdgeId ingress = kNoEdge;            ///< a
  EdgeId egress = kNoEdge;             ///< a'
  std::vector<EdgeId> e_path;          ///< e1..en
  std::vector<EdgeId> f_path;          ///< f1..fn
};

/// A daisy chain F_n^M, optionally closed into Theorem 3.17's cycle.
struct ChainedGadgets {
  Graph graph;
  std::int64_t n = 0;                  ///< Path length parameter of F_n.
  std::int64_t gadget_count = 0;       ///< M.
  std::vector<GadgetEdges> gadgets;    ///< gadgets[k] = F(k+1).
  EdgeId back_edge = kNoEdge;          ///< e0 (closed chains only).

  /// The route e_i, e_{i+1}, ..., e_n, a' inside gadget k (0-based), from
  /// `from_i` (1-based position on the e-path).
  [[nodiscard]] Route e_route(std::size_t k, std::size_t from_i) const;

  /// The route a, f1, ..., fn, a' of gadget k (0-based).
  [[nodiscard]] Route f_route(std::size_t k) const;
};

/// Builds the open daisy chain F_n^M (M >= 1, n >= 1).
ChainedGadgets build_chain(std::int64_t n, std::int64_t gadget_count);

/// Builds Theorem 3.17's network: F_n^M plus the back edge e0 from the head
/// of the last egress to the tail of the first ingress (Fig. 3.2).
ChainedGadgets build_closed_chain(std::int64_t n, std::int64_t gadget_count);

/// Longest route the LPS construction ever uses on this network, in edges
/// (the d parameter of the stability theorems, for this topology).
std::int64_t lps_longest_route(const ChainedGadgets& net);

}  // namespace aqt
