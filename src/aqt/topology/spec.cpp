#include "aqt/topology/spec.hpp"

#include <stdexcept>

#include "aqt/topology/generators.hpp"
#include "aqt/util/check.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {
namespace {

std::int64_t parse_int(const std::string& text, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(text, &pos);
    AQT_REQUIRE(pos == text.size(), "trailing junk in topology spec: "
                                        << spec);
    return v;
  } catch (const std::invalid_argument&) {
    AQT_REQUIRE(false, "malformed number in topology spec: " << spec);
    return 0;  // Unreachable; AQT_REQUIRE(false) always throws.
  } catch (const std::out_of_range&) {
    AQT_REQUIRE(false, "number out of range in topology spec: " << spec);
    return 0;  // Unreachable.
  }
}

}  // namespace

TopologySpec parse_topology_spec(const std::string& spec,
                                 std::uint64_t seed) {
  const auto colon = spec.find(':');
  AQT_REQUIRE(colon != std::string::npos && colon + 1 < spec.size(),
              "topology spec needs the form kind:arg, got: " << spec);
  const std::string kind = spec.substr(0, colon);
  const std::string arg = spec.substr(colon + 1);
  const auto x = arg.find('x');
  const auto one = [&] { return parse_int(arg, spec); };
  const auto two = [&] {
    AQT_REQUIRE(x != std::string::npos && x > 0 && x + 1 < arg.size(),
                "spec " << spec << " needs the form " << kind << ":AxB");
    return std::pair{parse_int(arg.substr(0, x), spec),
                     parse_int(arg.substr(x + 1), spec)};
  };

  TopologySpec out;
  if (kind == "line") {
    out.graph = make_line(one());
  } else if (kind == "ring") {
    out.graph = make_ring(one());
  } else if (kind == "bidiring") {
    out.graph = make_bidirectional_ring(one());
  } else if (kind == "grid") {
    const auto [a, b] = two();
    out.graph = make_grid(a, b);
  } else if (kind == "torus") {
    const auto [a, b] = two();
    out.graph = make_torus(a, b);
  } else if (kind == "tree") {
    out.graph = make_in_tree(one());
  } else if (kind == "hypercube") {
    out.graph = make_hypercube(one());
  } else if (kind == "dag") {
    Rng rng(seed);
    out.graph = make_random_dag(one(), 0.15, rng);
  } else if (kind == "parallel") {
    out.graph = make_parallel_edges(one());
  } else if (kind == "lps") {
    const auto [n, m] = two();
    out.lps_net = build_closed_chain(n, m);
    out.graph = out.lps_net.graph;
    out.is_lps = true;
  } else {
    AQT_REQUIRE(false,
                "unknown topology kind '" << kind << "' in spec " << spec
                                          << "; " << topology_spec_grammar());
  }
  return out;
}

const std::string& topology_spec_grammar() {
  static const std::string grammar =
      "line:N ring:N bidiring:N grid:RxC torus:RxC tree:D hypercube:D "
      "dag:N parallel:N lps:NxM";
  return grammar;
}

}  // namespace aqt
