// Closed-form quantities from the instability construction (paper §3 and
// the appendix).
//
// Everything the Lemma 3.6 / Theorem 3.17 adversary needs is computed here
// so that the simulation side and the analysis side share one definition:
//   R_i   = (1-r)/(1-r^i)                      (rate of old packets at e'_i)
//   (3.1) : R_i/(r+R_i) = R_{i+1}
//   n(eps), S0(eps): parameter choices from the proof of Lemma 3.6
//   t_i   = 2S/(r+R_i)                         (short-stream lengths)
//   S'    = 2S(1-R_n)                          (amplified queue size)
//   X     = S' - rS + n                        (part-4 injection count)
//   Q_i   = (2S-t_i) R_i                       (buffer floor at e'_i)
//   per-iteration growth r^3 (1+eps)^M / 4 and the minimal M making it > 1
//   appendix asymptotics: n = Theta(log 1/eps), S0 = Theta(eps^-1 log 1/eps)
//
// Logs are base 2, as in the appendix (log r in (-1, -1/2) for
// r in (1/2, 1/sqrt 2)).
#pragma once

#include <cstdint>

namespace aqt {

/// R_i = (1 - r) / (1 - r^i); R_1 = 1.  Requires i >= 1 and 0 < r < 1.
double lps_R(double r, std::int64_t i);

/// The paper's parameter choices for a given eps (r = 1/2 + eps).
struct LpsParams {
  double eps = 0.0;
  double r = 0.0;          ///< 1/2 + eps.
  std::int64_t n = 0;      ///< Smallest integer satisfying the proof's bound.
  std::int64_t s0 = 0;     ///< Smallest integer satisfying the proof's bound.
};

/// Computes n and S0 per the constraints in the proof of Lemma 3.6:
///   n  > max( (log eps - 2)/log r,  1 - 1/log r )
///   S0 > max( 2n,  n / (2 (R_n - R_{n+1})) ).
/// Requires 0 < eps < 1/2.
LpsParams lps_params(double eps);

/// t_i = 2S/(r + R_i) — the length of the short-packet stream for e'_i.
double lps_t(double S, double r, std::int64_t i);

/// S' = 2S(1 - R_n) — the amplified queue size after one gadget hand-off.
double lps_s_prime(double S, double r, std::int64_t n);

/// X = S' - rS + n — part (4) injection count; Claim 3.7: 0 < X <= rS.
double lps_X(double S, double r, std::int64_t n);

/// Q_i = (2S - t_i) R_i — the packets stored in e'_i at time 2S + i.
double lps_Q(double S, double r, std::int64_t i);

/// Per-outer-iteration growth factor of Theorem 3.17: r^3 (1+eps)^M / 4.
double lps_iteration_growth(double eps, std::int64_t M);

/// Minimal M with r^3 (1+eps)^M / 4 > 1.
std::int64_t lps_min_M(double eps);

/// The *exact* per-gadget amplification of one hand-off, S'/S = 2(1 - R_n).
/// Tends to 2r as n grows: > 1 for every r > 1/2 (and <= 1 for r <= 1/2 no
/// matter how large n is) — the structural origin of the paper's 1/2
/// threshold.  The (1 + eps) of Lemma 3.6 is a lower bound on this.
double lps_gadget_gain(double r, std::int64_t n);

/// Predicted measured growth of one full outer iteration with M gadgets:
/// bootstrap (1 - R_n), M-1 hand-offs of 2(1 - R_n) each, stitch r^3.
/// (The drain's loss is additive O(n) and ignored here.)
double lps_measured_iteration_growth(double r, std::int64_t n,
                                     std::int64_t M);

/// Minimal M for which the *exact* growth exceeds 1; returns -1 when the
/// per-gadget gain is <= 1 (r <= 1/2) and no M works.
std::int64_t lps_empirical_min_M(double r, std::int64_t n);

/// Appendix bounds: for eps < 1/sqrt(2) - 1/2,
///   log2(1/eps) + 2 < n < 2 log2(1/eps) + 4,   and   S0 = n r^{-n} etc.
struct LpsAsymptotics {
  double n_lower = 0.0;
  double n_upper = 0.0;
  double s0_estimate = 0.0;  ///< 4 n / eps (equation (5.10)).
};
LpsAsymptotics lps_asymptotics(double eps);

}  // namespace aqt
