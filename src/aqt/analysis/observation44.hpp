// A constructive implementation of Observation 4.4.
//
// The paper reduces S-initial-configuration stability to empty-start
// stability: any (w, r) adversary A that begins with an
// S-initial-configuration can be replayed by a (w*, r*) adversary A* that
// starts with empty buffers, for any r* > r and
// w* = ceil((S + w + 1)/(r* - r)).  A* injects the initial configuration at
// step 1 and then replays A shifted one step later.
//
// This module builds A* as a Trace and lets tests verify, with the exact
// window checker, that the transformed schedule really is (w*, r*)
// feasible — turning the observation's proof into an executable check.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/types.hpp"
#include "aqt/trace/trace.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// Result of the transform: the empty-start schedule plus the (w*, r*)
/// parameters it is feasible under.
struct Observation44Result {
  Trace schedule;          ///< A*: initial config at step 1, A shifted +1.
  std::int64_t w_star = 0;
  Rat r_star;
};

/// Builds A* from the initial configuration's routes and A's schedule
/// (injections only; the observation predates rerouting, and reroutes
/// shift with their packets).  `S` is computed from the initial routes as
/// the max per-edge multiplicity, matching the paper's definition.
Observation44Result observation44_transform(
    const std::vector<Route>& initial_configuration, const Trace& schedule,
    std::int64_t w, const Rat& r, const Rat& r_star,
    std::size_t edge_count);

}  // namespace aqt
