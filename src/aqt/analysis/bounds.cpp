#include "aqt/analysis/bounds.hpp"

#include "aqt/util/check.hpp"

namespace aqt {

NetworkParams network_params(const Graph& g) {
  NetworkParams p;
  p.m = static_cast<std::int64_t>(g.edge_count());
  p.alpha = static_cast<std::int64_t>(g.max_in_degree());
  return p;
}

Rat greedy_threshold(std::int64_t d) {
  AQT_REQUIRE(d >= 1, "d must be >= 1");
  return Rat(1, d + 1);
}

Rat time_priority_threshold(std::int64_t d) {
  AQT_REQUIRE(d >= 1, "d must be >= 1");
  return Rat(1, d);
}

Rat diaz_fifo_threshold(std::int64_t d, std::int64_t m, std::int64_t alpha) {
  AQT_REQUIRE(d >= 1 && m >= 1 && alpha >= 1, "parameters must be >= 1");
  return Rat(1, 2 * d * m * alpha);
}

Rat borodin_greedy_threshold(std::int64_t m) {
  AQT_REQUIRE(m >= 1, "m must be >= 1");
  return Rat(1, m);
}

std::int64_t residence_bound(std::int64_t w, const Rat& r) {
  AQT_REQUIRE(w >= 1, "window must be >= 1");
  return r.ceil_mul(w);
}

std::int64_t observation44_w_star(std::int64_t S, std::int64_t w,
                                  const Rat& r, const Rat& r_star) {
  AQT_REQUIRE(S >= 0 && w >= 1, "bad S or w");
  AQT_REQUIRE(r_star > r, "Observation 4.4 needs r* > r");
  const Rat num(S + w + 1);
  const Rat frac = num / (r_star - r);
  return frac.ceil();
}

namespace {

std::int64_t corollary_bound(std::int64_t S, std::int64_t w, const Rat& r,
                             const Rat& threshold) {
  AQT_REQUIRE(r < threshold,
              "corollary requires r strictly below the threshold");
  // w* = ceil((S + w + 1)/(threshold - r)); bound = ceil(w* * threshold).
  const std::int64_t w_star = (Rat(S + w + 1) / (threshold - r)).ceil();
  return threshold.ceil_mul(w_star);
}

}  // namespace

std::int64_t corollary45_residence_bound(std::int64_t S, std::int64_t w,
                                         const Rat& r, std::int64_t d) {
  return corollary_bound(S, w, r, greedy_threshold(d));
}

std::int64_t corollary46_residence_bound(std::int64_t S, std::int64_t w,
                                         const Rat& r, std::int64_t d) {
  return corollary_bound(S, w, r, time_priority_threshold(d));
}

std::int64_t queue_bound_from_residence(std::int64_t w, const Rat& r,
                                        std::int64_t d) {
  const std::int64_t B = residence_bound(w, r);
  return r.ceil_mul(d * B + w);
}

}  // namespace aqt
