#include "aqt/analysis/observation44.hpp"

#include <algorithm>

#include "aqt/analysis/bounds.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

Observation44Result observation44_transform(
    const std::vector<Route>& initial_configuration, const Trace& schedule,
    std::int64_t w, const Rat& r, const Rat& r_star,
    std::size_t edge_count) {
  AQT_REQUIRE(r_star > r, "Observation 4.4 needs r* > r");
  AQT_REQUIRE(w >= 1, "window must be >= 1");

  // S = max per-edge multiplicity of the initial configuration.
  std::vector<std::int64_t> per_edge(edge_count, 0);
  for (const Route& route : initial_configuration) {
    for (EdgeId e : route) {
      AQT_REQUIRE(e < edge_count, "edge id out of range");
      ++per_edge[e];
    }
  }
  const std::int64_t S =
      per_edge.empty() ? 0
                       : *std::max_element(per_edge.begin(), per_edge.end());

  Observation44Result result;
  result.r_star = r_star;
  result.w_star = observation44_w_star(S, w, r, r_star);

  // A* step 1: the whole initial configuration becomes injections.
  for (const Route& route : initial_configuration)
    result.schedule.record_injection(1, Injection{route, /*tag=*/0});

  // Then A's schedule, one step later.
  for (const TraceEvent& ev : schedule.events()) {
    AQT_REQUIRE(ev.kind == TraceEvent::Kind::kInjection,
                "observation44_transform handles injection-only schedules");
    result.schedule.record_injection(ev.t + 1, Injection{ev.edges, ev.tag});
  }
  return result;
}

}  // namespace aqt
