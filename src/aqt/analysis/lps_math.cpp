#include "aqt/analysis/lps_math.hpp"

#include <cmath>

#include "aqt/util/check.hpp"

namespace aqt {

double lps_R(double r, std::int64_t i) {
  AQT_REQUIRE(i >= 1, "R_i needs i >= 1");
  AQT_REQUIRE(r > 0.0 && r < 1.0, "R_i needs 0 < r < 1");
  return (1.0 - r) / (1.0 - std::pow(r, static_cast<double>(i)));
}

LpsParams lps_params(double eps) {
  AQT_REQUIRE(eps > 0.0 && eps < 0.5, "lps_params needs 0 < eps < 1/2");
  LpsParams p;
  p.eps = eps;
  p.r = 0.5 + eps;

  const double log_r = std::log2(p.r);  // negative
  const double bound1 = (std::log2(eps) - 2.0) / log_r;
  const double bound2 = 1.0 - 1.0 / log_r;
  const double n_min = std::max(bound1, bound2);
  p.n = static_cast<std::int64_t>(std::floor(n_min)) + 1;

  const double gap = lps_R(p.r, p.n) - lps_R(p.r, p.n + 1);
  AQT_CHECK(gap > 0.0, "R_n - R_{n+1} must be positive");
  const double s0_min =
      std::max(2.0 * static_cast<double>(p.n),
               static_cast<double>(p.n) / (2.0 * gap));
  p.s0 = static_cast<std::int64_t>(std::floor(s0_min)) + 1;
  return p;
}

double lps_t(double S, double r, std::int64_t i) {
  return 2.0 * S / (r + lps_R(r, i));
}

double lps_s_prime(double S, double r, std::int64_t n) {
  return 2.0 * S * (1.0 - lps_R(r, n));
}

double lps_X(double S, double r, std::int64_t n) {
  return lps_s_prime(S, r, n) - r * S + static_cast<double>(n);
}

double lps_Q(double S, double r, std::int64_t i) {
  return (2.0 * S - lps_t(S, r, i)) * lps_R(r, i);
}

double lps_iteration_growth(double eps, std::int64_t M) {
  const double r = 0.5 + eps;
  return r * r * r * std::pow(1.0 + eps, static_cast<double>(M)) / 4.0;
}

std::int64_t lps_min_M(double eps) {
  AQT_REQUIRE(eps > 0.0, "lps_min_M needs eps > 0");
  const double r = 0.5 + eps;
  // Smallest M with (1+eps)^M > 4 / r^3.
  const double target = std::log(4.0 / (r * r * r)) / std::log1p(eps);
  auto M = static_cast<std::int64_t>(std::floor(target)) + 1;
  while (lps_iteration_growth(eps, M) <= 1.0) ++M;  // Float-safety nudge.
  return M;
}

double lps_gadget_gain(double r, std::int64_t n) {
  return 2.0 * (1.0 - lps_R(r, n));
}

double lps_measured_iteration_growth(double r, std::int64_t n,
                                     std::int64_t M) {
  AQT_REQUIRE(M >= 1, "need M >= 1");
  const double gain = lps_gadget_gain(r, n);
  return (gain / 2.0) * std::pow(gain, static_cast<double>(M - 1)) * r * r *
         r;
}

std::int64_t lps_empirical_min_M(double r, std::int64_t n) {
  if (lps_gadget_gain(r, n) <= 1.0) return -1;
  std::int64_t M = 1;
  while (lps_measured_iteration_growth(r, n, M) <= 1.0) {
    ++M;
    AQT_CHECK(M < 100000, "empirical min M runaway");
  }
  return M;
}

LpsAsymptotics lps_asymptotics(double eps) {
  AQT_REQUIRE(eps > 0.0 && eps < 0.5, "asymptotics need 0 < eps < 1/2");
  LpsAsymptotics a;
  a.n_lower = std::log2(1.0 / eps) + 2.0;
  a.n_upper = 2.0 * std::log2(1.0 / eps) + 4.0;
  const LpsParams p = lps_params(eps);
  a.s0_estimate = 4.0 * static_cast<double>(p.n) / eps;
  return a;
}

}  // namespace aqt
