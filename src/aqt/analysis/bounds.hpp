// Stability thresholds and waiting-time bounds (paper §4 plus the prior
// bounds the paper improves on).
//
// d is the length, in edges, of the longest route used by any packet; m the
// number of edges; alpha the maximum in-degree.  All thresholds are exact
// rationals so comparisons against adversary rates never suffer float
// round-off.
#pragma once

#include <cstdint>

#include "aqt/core/graph.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// Structural parameters relevant to the stability bounds.
struct NetworkParams {
  std::int64_t m = 0;      ///< Number of edges.
  std::int64_t alpha = 0;  ///< Maximum in-degree.
};

NetworkParams network_params(const Graph& g);

/// Theorem 4.1: every greedy protocol is stable for r <= 1/(d+1).
Rat greedy_threshold(std::int64_t d);

/// Theorem 4.3: every time-priority protocol (e.g. FIFO, LIS) is stable for
/// r <= 1/d.
Rat time_priority_threshold(std::int64_t d);

/// Diaz et al. (SPAA 2001): FIFO is stable below a network-dependent bound
/// that is at most 1/(2 d m alpha); we use that cap as the comparator.
Rat diaz_fifo_threshold(std::int64_t d, std::int64_t m, std::int64_t alpha);

/// Borodin (private communication, cited as [6]): any greedy protocol is
/// stable for r < 1/m.
Rat borodin_greedy_threshold(std::int64_t m);

/// Theorems 4.1/4.3: at or below threshold, no packet waits more than
/// ceil(w*r) steps in any one buffer.
std::int64_t residence_bound(std::int64_t w, const Rat& r);

/// Observation 4.4: a (w, r) adversary with an S-initial-configuration can
/// be replayed by a (w*, r*) adversary from empty buffers, for any r* > r
/// with w* = ceil((S + w + 1)/(r* - r)).
std::int64_t observation44_w_star(std::int64_t S, std::int64_t w,
                                  const Rat& r, const Rat& r_star);

/// Corollary 4.5: greedy schedule, S-initial-configuration, r < 1/(d+1):
/// residence <= ceil( ceil((S+w+1)/(1/(d+1) - r)) * 1/(d+1) ).
std::int64_t corollary45_residence_bound(std::int64_t S, std::int64_t w,
                                         const Rat& r, std::int64_t d);

/// Corollary 4.6: time-priority protocol, r < 1/d: same with 1/d.
std::int64_t corollary46_residence_bound(std::int64_t S, std::int64_t w,
                                         const Rat& r, std::int64_t d);

/// A crude but sound consequence of bounded residence: with per-buffer
/// waiting bounded by B = ceil(w*r), any packet spends at most d*B steps in
/// the network, so at most ceil(r*(d*B + w)) packets per edge coexist;
/// returns that occupancy bound (used to sanity-check "bounded" claims).
std::int64_t queue_bound_from_residence(std::int64_t w, const Rat& r,
                                        std::int64_t d);

}  // namespace aqt
