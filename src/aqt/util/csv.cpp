#include "aqt/util/csv.hpp"

#include <cstdio>

#include "aqt/util/check.hpp"

namespace aqt {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  if (out_) row(header);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (!out_) return;
  AQT_REQUIRE(fields.size() == width_,
              "CSV row width " << fields.size() << " != header " << width_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::format(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace aqt
