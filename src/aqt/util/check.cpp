#include "aqt/util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace aqt::detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::fprintf(stderr, "AQT_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& msg) {
  std::string what = "precondition violated: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " -- ";
    what += msg;
  }
  throw PreconditionError(what);
}

}  // namespace aqt::detail
