// Fixed-width console table printer.
//
// Every bench binary prints one or more paper-style tables; this class keeps
// the formatting consistent: column sizing from content, a rule under the
// header, numbers right-aligned, text left-aligned.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aqt {

/// Collects rows, then renders with per-column auto width.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row (width must match the header).
  void row(std::vector<std::string> fields);

  template <typename... Ts>
  void rowv(const Ts&... fields) {
    row(std::vector<std::string>{cell(fields)...});
  }

  /// Renders to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  static std::string cell(const std::string& s) { return s; }
  static std::string cell(const char* s) { return s; }
  static std::string cell(double v, int prec = 4);
  static std::string cell(bool v) { return v ? "yes" : "no"; }
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace aqt
