// Tiny command-line flag parser for the examples and benches.
//
// Supports `--name value` and `--name=value`; unknown flags are an error so
// typos are caught.  Each binary declares its flags with defaults and a help
// string; `--help` prints them and exits.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "aqt/util/rational.hpp"

namespace aqt {

/// Declarative flag set.
class Cli {
 public:
  /// `program` and `about` feed the --help banner.
  Cli(std::string program, std::string about);

  Cli& flag(const std::string& name, const std::string& def,
            const std::string& help);

  /// Declares that the tool accepts positional (non-flag) arguments, e.g.
  /// file paths; `placeholder` and `help` feed the --help banner.  Without
  /// this declaration positional arguments remain an error.
  Cli& positionals(const std::string& placeholder, const std::string& help);

  /// Parses argv; on --help prints usage and returns false (caller exits 0).
  /// Throws PreconditionError on unknown flags or missing values.
  [[nodiscard]] bool parse(int argc, char** argv);

  /// The positional arguments collected by parse(), in order.
  [[nodiscard]] const std::vector<std::string>& positional_args() const {
    return positionals_;
  }

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] Rat get_rat(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string def;
    std::string help;
  };

  std::string program_;
  std::string about_;
  std::vector<std::string> order_;
  std::map<std::string, Flag> flags_;
  bool allow_positionals_ = false;
  std::string positional_placeholder_;
  std::string positional_help_;
  std::vector<std::string> positionals_;
};

// --- Flags shared across the aqt tools --------------------------------------
//
// Every tool that supports one of these concerns declares it through the
// helpers below, so the flag spells, documents, defaults, and errors
// identically in aqt-sim, aqt-verify, aqt-lint, and aqt-fuzz (and any
// bench that grows a command line).

/// Declares `--jobs` (worker threads; 0 = all hardware threads).
Cli& add_jobs_flag(Cli& cli, const std::string& def = "1");

/// Declares `--seed` with the given default.
Cli& add_seed_flag(Cli& cli, const std::string& def = "1");

/// Declares `--metrics-out` (JSON snapshot), `--metrics-prom` (Prometheus
/// text exposition), and `--metrics-csv`.
Cli& add_metrics_flags(Cli& cli);

/// Reads a declared --jobs value; rejects negatives with the shared error.
[[nodiscard]] unsigned get_jobs(const Cli& cli);

/// Reads a declared --seed value; rejects negatives with the shared error.
[[nodiscard]] std::uint64_t get_seed(const Cli& cli);

}  // namespace aqt
