#include "aqt/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace aqt {

void StatAccumulator::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double StatAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StatAccumulator::stddev() const { return std::sqrt(variance()); }

void StatAccumulator::merge(const StatAccumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace aqt
