// Minimal CSV writer for experiment traces.
//
// Benches and examples dump their measured series as CSV next to the
// human-readable table so results can be re-plotted without re-running.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace aqt {

/// Streams rows to a CSV file.  Fields are quoted only when needed.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// True if the file opened successfully.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Writes one row; the field count must match the header.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void rowv(const Ts&... fields) {
    row(std::vector<std::string>{format(fields)...});
  }

  static std::string format(const std::string& s) { return s; }
  static std::string format(const char* s) { return s; }
  static std::string format(double v);
  static std::string format(long long v) { return std::to_string(v); }
  static std::string format(unsigned long long v) { return std::to_string(v); }
  static std::string format(long v) { return std::to_string(v); }
  static std::string format(unsigned long v) { return std::to_string(v); }
  static std::string format(int v) { return std::to_string(v); }
  static std::string format(unsigned v) { return std::to_string(v); }

 private:
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace aqt
