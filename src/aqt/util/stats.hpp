// Streaming summary statistics (Welford's algorithm) for multi-seed
// experiment sweeps.
//
// Empty-denominator convention (see core/metrics.hpp): with no samples,
// mean()/variance()/stddev()/min()/max() all return 0.0 — never NaN or
// Inf — so downstream arithmetic and exporters need no special-casing.
#pragma once

#include <cstdint>
#include <limits>

namespace aqt {

/// Accumulates count / mean / variance / min / max in one pass.
class StatAccumulator {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const StatAccumulator& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace aqt
