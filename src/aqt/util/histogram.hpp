// Logarithmic-bucket histogram for latency and queue-size distributions.
//
// Buckets are powers of two: bucket k holds values in [2^k, 2^(k+1)), with
// bucket 0 holding {0, 1}.  Constant memory, O(1) insert, and quantile
// estimates good to a factor of two — the right fidelity for tail-latency
// reporting in benches.
//
// Empty-denominator convention (see core/metrics.hpp): with no samples,
// mean()/min()/max()/quantile() all return 0 — never NaN or Inf.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace aqt {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  /// O(1) insert; inline because the engine calls this ~20x per step
  /// (queue depth, residence, latency) and the call cost dominated the
  /// bucketing cost when it lived out of line.
  void add(std::int64_t value) {
    if (value < 0) [[unlikely]] fail_negative(value);
    if (count_ == 0) {
      min_ = max_ = value;
    } else {
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    }
    ++buckets_[bucket_of(value)];
    ++count_;
    sum_ += static_cast<double>(value);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] std::int64_t min() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max() const { return count_ ? max_ : 0; }
  [[nodiscard]] double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Raw count in bucket `b` (for exporters; 0 <= b < kBuckets).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b];
  }
  /// Inclusive upper bound of bucket `b` (1, 3, 7, 15, ...).
  [[nodiscard]] static std::int64_t bucket_upper_bound(std::size_t b) {
    return bucket_upper(b);
  }

  /// Upper bound of the bucket containing the q-quantile (0 < q <= 1);
  /// exact to within the bucket's factor-of-two width.
  [[nodiscard]] std::int64_t quantile(double q) const;

  /// One-line summary, e.g. "n=1000 mean=12.3 p50<=16 p99<=128 max=97".
  [[nodiscard]] std::string summary() const;

  /// Merges another histogram.
  void merge(const Histogram& other);

  /// Checkpoint plumbing: single-line serialization ("hist <fields...>").
  void save(std::ostream& os) const;
  void load(std::istream& is);
  /// Reads the fields after the "hist" tag (for callers that already
  /// consumed it while scanning sections).
  void load_body(std::istream& is);

 private:
  /// floor(log2(value)) for value >= 2; {0, 1} map to bucket 0.
  static std::size_t bucket_of(std::int64_t value) {
    if (value <= 1) return 0;
    const auto b = static_cast<std::size_t>(
        std::bit_width(static_cast<std::uint64_t>(value)) - 1);
    return std::min(b, kBuckets - 1);
  }
  static std::int64_t bucket_upper(std::size_t bucket);
  [[noreturn]] static void fail_negative(std::int64_t value);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace aqt
