#include "aqt/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

#include "aqt/util/check.hpp"

namespace aqt {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != 'e' &&
        c != 'E' && c != '-' && c != '+' && c != '/' && c != 'x' && c != '%')
      return false;
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::row(std::vector<std::string> fields) {
  AQT_REQUIRE(fields.size() == header_.size(),
              "table row width " << fields.size() << " != header "
                                 << header_.size());
  rows_.push_back(std::move(fields));
}

std::string Table::cell(double v, int prec) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& r, bool align_numeric) {
    os << "  ";
    for (std::size_t c = 0; c < r.size(); ++c) {
      const auto pad = width[c] - r[c].size();
      const bool right = align_numeric && looks_numeric(r[c]);
      if (right) os << std::string(pad, ' ');
      os << r[c];
      if (!right) os << std::string(pad, ' ');
      if (c + 1 < r.size()) os << "  ";
    }
    os << '\n';
  };

  emit(header_, false);
  os << "  ";
  for (std::size_t c = 0; c < width.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < width.size()) os << "  ";
  }
  os << '\n';
  for (const auto& r : rows_) emit(r, true);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace aqt
