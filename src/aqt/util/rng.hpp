// Deterministic random number generation.
//
// All stochastic components of the library (random traffic generators, the
// RANDOM protocol, topology generators) draw from an explicitly-seeded
// xoshiro256** generator.  Nothing in the library ever touches global or
// time-seeded randomness, so every experiment is replayable bit-for-bit from
// its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace aqt {

/// Deterministic seed derivation for independent parallel substreams: mixes
/// a master seed with a stream index (cell number, trial number, worker id)
/// through two SplitMix64 rounds.  The result depends only on the inputs —
/// never on scheduling — so a work pool that hands cell k to any worker
/// still gives cell k the same RNG, and nearby stream indices yield
/// uncorrelated seeds.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli(p).
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A fresh generator derived from this one (for independent substreams).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::uint64_t s_[4];
};

}  // namespace aqt
