// Exact rational arithmetic for injection rates.
//
// Adversarial queuing theory constrains the adversary with expressions such
// as "at most ceil(r * (t2 - t1 + 1)) packets requiring edge e in any
// interval [t1, t2]".  Evaluating these with floating point invites
// off-by-one errors exactly at the boundary cases the theory cares about, so
// every rate in this library is an exact rational.  Numerators and
// denominators stay tiny (rates are human-supplied, e.g. 3/5), so a plain
// int64 representation with normalization is ample; all multiplications that
// could overflow go through __int128.
#pragma once

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <numeric>
#include <string>

#include "aqt/util/check.hpp"

namespace aqt {
namespace detail {
// __extension__ silences -Wpedantic: __int128 is a GCC/Clang extension we
// rely on for overflow-free cross multiplication of int64 rationals.
__extension__ typedef __int128 i128;
__extension__ typedef unsigned __int128 u128;
}  // namespace detail

/// An exact rational number p/q with q > 0, always stored in lowest terms.
class Rat {
 public:
  /// Zero.
  constexpr Rat() : num_(0), den_(1) {}

  /// The integer n.
  constexpr Rat(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(implicit)

  /// p/q.  Requires q != 0; the sign is normalized onto the numerator.
  Rat(std::int64_t p, std::int64_t q);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  /// Parses "p/q", "p" or a decimal such as "0.6" (exactly, base 10).
  [[nodiscard]] static Rat parse(const std::string& text);

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  /// floor(p/q) for any sign.
  [[nodiscard]] std::int64_t floor() const;
  /// ceil(p/q) for any sign.
  [[nodiscard]] std::int64_t ceil() const;

  /// floor(this * k), computed exactly.
  [[nodiscard]] std::int64_t floor_mul(std::int64_t k) const;
  /// ceil(this * k), computed exactly.
  [[nodiscard]] std::int64_t ceil_mul(std::int64_t k) const;

  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  Rat operator-() const;
  Rat operator+(const Rat& o) const;
  Rat operator-(const Rat& o) const;
  Rat operator*(const Rat& o) const;
  Rat operator/(const Rat& o) const;

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  bool operator==(const Rat& o) const = default;
  std::strong_ordering operator<=>(const Rat& o) const;

  [[nodiscard]] std::string str() const;

 private:
  static Rat from_i128(detail::i128 p, detail::i128 q);

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Rat& r);

}  // namespace aqt
