#include "aqt/util/rational.hpp"

#include <cstdlib>
#include <limits>
#include <ostream>

namespace aqt {
namespace {

detail::i128 gcd128(detail::i128 a, detail::i128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    detail::i128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t narrow(detail::i128 v) {
  AQT_CHECK(v >= std::numeric_limits<std::int64_t>::min() &&
                v <= std::numeric_limits<std::int64_t>::max(),
            "rational overflow");
  return static_cast<std::int64_t>(v);
}

}  // namespace

Rat::Rat(std::int64_t p, std::int64_t q) : num_(p), den_(q) {
  AQT_REQUIRE(q != 0, "rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

Rat Rat::from_i128(detail::i128 p, detail::i128 q) {
  AQT_CHECK(q != 0, "rational with zero denominator");
  if (q < 0) {
    p = -p;
    q = -q;
  }
  const detail::i128 g = gcd128(p, q);
  if (g > 1) {
    p /= g;
    q /= g;
  }
  return Rat(narrow(p), narrow(q));
}

Rat Rat::parse(const std::string& text) {
  AQT_REQUIRE(!text.empty(), "empty rational literal");
  const auto slash = text.find('/');
  if (slash != std::string::npos) {
    const std::int64_t p = std::stoll(text.substr(0, slash));
    const std::int64_t q = std::stoll(text.substr(slash + 1));
    return Rat(p, q);
  }
  const auto dot = text.find('.');
  if (dot != std::string::npos) {
    const std::string whole = text.substr(0, dot);
    const std::string frac = text.substr(dot + 1);
    AQT_REQUIRE(frac.size() <= 15, "decimal literal too precise: " << text);
    std::int64_t den = 1;
    for (std::size_t i = 0; i < frac.size(); ++i) den *= 10;
    const bool neg = !whole.empty() && whole[0] == '-';
    const std::int64_t w =
        whole.empty() || whole == "-" ? 0 : std::stoll(whole);
    const std::int64_t f = frac.empty() ? 0 : std::stoll(frac);
    const std::int64_t p = w * den + (neg ? -f : (w < 0 ? -f : f));
    return Rat(p, den);
  }
  return Rat(std::stoll(text), 1);
}

std::int64_t Rat::floor() const {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

std::int64_t Rat::ceil() const {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

std::int64_t Rat::floor_mul(std::int64_t k) const {
  const detail::i128 p = static_cast<detail::i128>(num_) * k;
  const detail::i128 q = den_;
  if (p >= 0) return narrow(p / q);
  return narrow(-((-p + q - 1) / q));
}

std::int64_t Rat::ceil_mul(std::int64_t k) const {
  const detail::i128 p = static_cast<detail::i128>(num_) * k;
  const detail::i128 q = den_;
  if (p >= 0) return narrow((p + q - 1) / q);
  return narrow(-((-p) / q));
}

Rat Rat::operator-() const { return Rat(-num_, den_); }

Rat Rat::operator+(const Rat& o) const {
  return from_i128(static_cast<detail::i128>(num_) * o.den_ +
                       static_cast<detail::i128>(o.num_) * den_,
                   static_cast<detail::i128>(den_) * o.den_);
}

Rat Rat::operator-(const Rat& o) const { return *this + (-o); }

Rat Rat::operator*(const Rat& o) const {
  return from_i128(static_cast<detail::i128>(num_) * o.num_,
                   static_cast<detail::i128>(den_) * o.den_);
}

Rat Rat::operator/(const Rat& o) const {
  AQT_REQUIRE(o.num_ != 0, "division by zero rational");
  return from_i128(static_cast<detail::i128>(num_) * o.den_,
                   static_cast<detail::i128>(den_) * o.num_);
}

std::strong_ordering Rat::operator<=>(const Rat& o) const {
  const detail::i128 lhs = static_cast<detail::i128>(num_) * o.den_;
  const detail::i128 rhs = static_cast<detail::i128>(o.num_) * den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Rat::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rat& r) {
  return os << r.str();
}

}  // namespace aqt
