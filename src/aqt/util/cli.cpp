#include "aqt/util/cli.hpp"

#include <cstdio>

#include "aqt/util/check.hpp"

namespace aqt {

Cli::Cli(std::string program, std::string about)
    : program_(std::move(program)), about_(std::move(about)) {}

Cli& Cli::flag(const std::string& name, const std::string& def,
               const std::string& help) {
  AQT_REQUIRE(!flags_.count(name), "duplicate flag --" << name);
  order_.push_back(name);
  flags_[name] = Flag{def, def, help};
  return *this;
}

Cli& Cli::positionals(const std::string& placeholder,
                      const std::string& help) {
  allow_positionals_ = true;
  positional_placeholder_ = placeholder;
  positional_help_ = help;
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s - %s\n\n", program_.c_str(), about_.c_str());
      if (allow_positionals_)
        std::printf("usage: %s [flags] %s\n  %s\n\n", program_.c_str(),
                    positional_placeholder_.c_str(),
                    positional_help_.c_str());
      std::printf("flags:\n");
      for (const auto& name : order_) {
        const auto& f = flags_.at(name);
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    f.help.c_str(), f.def.empty() ? "\"\"" : f.def.c_str());
      }
      return false;
    }
    if (allow_positionals_ &&
        (arg.size() < 2 || arg[0] != '-' || arg[1] != '-')) {
      positionals_.push_back(arg);
      continue;
    }
    AQT_REQUIRE(arg.size() > 2 && arg[0] == '-' && arg[1] == '-',
                "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      AQT_REQUIRE(i + 1 < argc, "flag --" << arg << " needs a value");
      value = argv[++i];
    }
    auto it = flags_.find(arg);
    AQT_REQUIRE(it != flags_.end(), "unknown flag --" << arg);
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  AQT_REQUIRE(it != flags_.end(), "undeclared flag --" << name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double Cli::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

Rat Cli::get_rat(const std::string& name) const {
  return Rat::parse(get(name));
}

}  // namespace aqt
