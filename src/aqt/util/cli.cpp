#include "aqt/util/cli.hpp"

#include <cstdio>

#include "aqt/util/check.hpp"

namespace aqt {

Cli::Cli(std::string program, std::string about)
    : program_(std::move(program)), about_(std::move(about)) {}

Cli& Cli::flag(const std::string& name, const std::string& def,
               const std::string& help) {
  AQT_REQUIRE(!flags_.count(name), "duplicate flag --" << name);
  order_.push_back(name);
  flags_[name] = Flag{def, def, help};
  return *this;
}

Cli& Cli::positionals(const std::string& placeholder,
                      const std::string& help) {
  allow_positionals_ = true;
  positional_placeholder_ = placeholder;
  positional_help_ = help;
  return *this;
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s - %s\n\n", program_.c_str(), about_.c_str());
      if (allow_positionals_)
        std::printf("usage: %s [flags] %s\n  %s\n\n", program_.c_str(),
                    positional_placeholder_.c_str(),
                    positional_help_.c_str());
      std::printf("flags:\n");
      for (const auto& name : order_) {
        const auto& f = flags_.at(name);
        std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                    f.help.c_str(), f.def.empty() ? "\"\"" : f.def.c_str());
      }
      return false;
    }
    if (allow_positionals_ &&
        (arg.size() < 2 || arg[0] != '-' || arg[1] != '-')) {
      positionals_.push_back(arg);
      continue;
    }
    AQT_REQUIRE(arg.size() > 2 && arg[0] == '-' && arg[1] == '-',
                "unexpected argument: " << arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      AQT_REQUIRE(i + 1 < argc, "flag --" << arg << " needs a value");
      value = argv[++i];
    }
    auto it = flags_.find(arg);
    AQT_REQUIRE(it != flags_.end(), "unknown flag --" << arg);
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  AQT_REQUIRE(it != flags_.end(), "undeclared flag --" << name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  std::int64_t out = 0;
  try {
    out = std::stoll(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  AQT_REQUIRE(pos == v.size() && !v.empty(),
              "flag --" << name << " needs an integer, got '" << v << "'");
  return out;
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(v, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  AQT_REQUIRE(pos == v.size() && !v.empty(),
              "flag --" << name << " needs a number, got '" << v << "'");
  return out;
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

Rat Cli::get_rat(const std::string& name) const {
  return Rat::parse(get(name));
}

Cli& add_jobs_flag(Cli& cli, const std::string& def) {
  return cli.flag("jobs", def,
                  "worker threads for independent runs (0 = all hardware "
                  "threads); results are byte-identical for any value");
}

Cli& add_seed_flag(Cli& cli, const std::string& def) {
  return cli.flag("seed", def, "rng seed (non-negative)");
}

Cli& add_metrics_flags(Cli& cli) {
  cli.flag("metrics-out", "",
           "write a JSON metrics snapshot (aqt-metrics/1) to this path");
  cli.flag("metrics-prom", "",
           "write the metrics in Prometheus text exposition to this path");
  cli.flag("metrics-csv", "", "write the metrics as CSV to this path");
  return cli;
}

unsigned get_jobs(const Cli& cli) {
  const std::int64_t jobs = cli.get_int("jobs");
  AQT_REQUIRE(jobs >= 0, "--jobs must be >= 0, got " << jobs);
  return static_cast<unsigned>(jobs);
}

std::uint64_t get_seed(const Cli& cli) {
  const std::int64_t seed = cli.get_int("seed");
  AQT_REQUIRE(seed >= 0, "--seed must be >= 0, got " << seed);
  return static_cast<std::uint64_t>(seed);
}

}  // namespace aqt
