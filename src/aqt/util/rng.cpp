#include "aqt/util/rng.hpp"

#include "aqt/util/check.hpp"

namespace aqt {
namespace detail {
__extension__ typedef unsigned __int128 u128;
}  // namespace detail
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // Two SplitMix64 rounds over (seed, stream): the first whitens the raw
  // seed, the second folds the stream index in; a final round separates
  // streams that differ only in high bits.
  std::uint64_t x = seed;
  std::uint64_t z = splitmix64(x);
  x ^= stream * 0xd1342543de82ef95ULL;
  z ^= splitmix64(x);
  x = z;
  return splitmix64(x);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  AQT_REQUIRE(bound > 0, "Rng::below(0)");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  detail::u128 m = static_cast<detail::u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<detail::u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  AQT_REQUIRE(lo <= hi, "Rng::range with lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace aqt
