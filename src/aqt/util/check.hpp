// Lightweight runtime checking macros.
//
// AQT_CHECK(cond, msg...)   -- always-on invariant check; aborts with a
//                              diagnostic on failure (used for internal
//                              invariants whose violation means a bug).
// AQT_REQUIRE(cond, msg...) -- precondition check on public API boundaries;
//                              throws aqt::PreconditionError so callers and
//                              tests can observe misuse without aborting.
//
// Both macros stringify the failing expression and capture file:line.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aqt {

/// Thrown when a public-API precondition is violated (AQT_REQUIRE).
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

[[noreturn]] void require_failed(const char* expr, const char* file, int line,
                                 const std::string& msg);

}  // namespace detail
}  // namespace aqt

#define AQT_CHECK(cond, ...)                                               \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::std::ostringstream aqt_check_oss_;                                 \
      aqt_check_oss_ << "" __VA_ARGS__;                                    \
      ::aqt::detail::check_failed(#cond, __FILE__, __LINE__,               \
                                  aqt_check_oss_.str());                   \
    }                                                                      \
  } while (false)

#define AQT_REQUIRE(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      ::std::ostringstream aqt_check_oss_;                                 \
      aqt_check_oss_ << "" __VA_ARGS__;                                    \
      ::aqt::detail::require_failed(#cond, __FILE__, __LINE__,             \
                                    aqt_check_oss_.str());                 \
    }                                                                      \
  } while (false)
