#include "aqt/util/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <limits>
#include <ostream>
#include <string>

#include "aqt/util/check.hpp"

namespace aqt {

void Histogram::fail_negative(std::int64_t value) {
  AQT_REQUIRE(false, "histogram values must be non-negative, got " << value);
  std::abort();  // unreachable: AQT_REQUIRE(false) throws
}

std::int64_t Histogram::bucket_upper(std::size_t bucket) {
  if (bucket == 0) return 1;
  if (bucket >= 62) return std::numeric_limits<std::int64_t>::max();
  return (std::int64_t{1} << (bucket + 1)) - 1;
}

std::int64_t Histogram::quantile(double q) const {
  AQT_REQUIRE(q > 0.0 && q <= 1.0, "quantile out of (0, 1]");
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) return std::min(bucket_upper(b), max_);
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%llu mean=%.1f p50<=%lld p90<=%lld p99<=%lld max=%lld",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<long long>(quantile(0.5)),
                static_cast<long long>(quantile(0.9)),
                static_cast<long long>(quantile(0.99)),
                static_cast<long long>(max()));
  return buf;
}

void Histogram::save(std::ostream& os) const {
  os << "hist " << count_ << ' ' << sum_ << ' ' << min_ << ' ' << max_;
  for (const std::uint64_t b : buckets_) os << ' ' << b;
  os << '\n';
}

void Histogram::load(std::istream& is) {
  std::string word;
  is >> word;
  AQT_REQUIRE(is && word == "hist", "malformed histogram section");
  load_body(is);
}

void Histogram::load_body(std::istream& is) {
  is >> count_ >> sum_ >> min_ >> max_;
  for (std::uint64_t& b : buckets_) is >> b;
  AQT_REQUIRE(static_cast<bool>(is), "truncated histogram");
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace aqt
