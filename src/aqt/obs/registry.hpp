// MetricRegistry: a central, named collection of counters, gauges, and
// histograms — the observability layer's single source of truth.
//
// The engine's in-memory Metrics (core/metrics.hpp) answers the paper's
// stability question for one run; the registry generalizes that into a
// tool-agnostic snapshot every binary (aqt-sim, aqt-verify, aqt-lint,
// aqt-fuzz, examples, benches) can populate and every exporter
// (export.hpp: Prometheus text exposition, JSON snapshot, CSV) can walk, so
// the whole repo emits one schema.
//
// Semantics:
//  * Names follow Prometheus conventions: [a-z_][a-z0-9_]*, with unit
//    suffixes (_total for counters, _steps / _packets / _seconds for
//    gauges and histograms).
//  * A metric family is (name, help, type); cells within a family are
//    distinguished by a single optional label value (e.g. edge="h0_1",
//    phase="transmit").  Registering the same (name, label) again returns
//    the existing cell; re-registering a name with a different type is a
//    precondition error.
//  * Counters are monotone non-negative integers; gauges are doubles that
//    may move freely; histograms are the shared log-bucket
//    util/histogram.hpp.
//  * Iteration order (families, and cells within a family) is registration
//    order, so exports are deterministic and golden-testable.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "aqt/util/histogram.hpp"

namespace aqt::obs {

/// Monotone event count.
class Counter {
 public:
  // aqt-audit: allow(AUD005) -- integer counter: uint64 addition is exact
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  /// Sets an absolute value; must not go backwards (counters are monotone).
  void set(std::uint64_t value);
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricType type);

class MetricRegistry {
 public:
  /// One labeled instance within a family.  Only the member matching the
  /// family type is meaningful.
  struct Cell {
    std::string label;  ///< Label *value*; empty for unlabeled metrics.
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  struct Family {
    std::string name;
    std::string help;
    std::string label_key;  ///< Label *name* (e.g. "edge"); may be empty.
    MetricType type = MetricType::kCounter;
    std::deque<Cell> cells;  ///< Registration order.
  };

  /// Registers (or finds) a counter/gauge/histogram cell.  `label_key` and
  /// `label` must both be given or both be empty; all cells of one family
  /// share the same label key.  Throws PreconditionError on an invalid name
  /// or a type/label-key mismatch with a previous registration.  Returned
  /// references stay valid for the registry's lifetime (deque storage).
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& label_key = "",
                   const std::string& label = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& label_key = "",
               const std::string& label = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::string& label_key = "",
                       const std::string& label = "");

  /// All families in registration order (for exporters).
  [[nodiscard]] const std::deque<Family>& families() const {
    return families_;
  }

  /// Lookup without registering; nullptr when absent.
  [[nodiscard]] const Family* find(const std::string& name) const;

  /// Folds another registry into this one, family by family and cell by
  /// cell (matched by name/label; absent ones are created in `other`'s
  /// registration order).  Counters add, gauges keep the maximum (every
  /// gauge in this codebase is a peak or a 0/1 flag), histograms merge
  /// bucket-wise.  Merging is commutative over integer-valued inputs, so a
  /// run pool can merge its per-worker registries after the barrier and get
  /// the same snapshot regardless of which worker ran which cell.  Throws
  /// PreconditionError on a type or label-key mismatch.
  void merge_from(const MetricRegistry& other);

 private:
  Cell& cell(const std::string& name, const std::string& help,
             MetricType type, const std::string& label_key,
             const std::string& label);

  std::deque<Family> families_;
};

}  // namespace aqt::obs
