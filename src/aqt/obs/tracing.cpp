#include "aqt/obs/tracing.hpp"

#include <cstdio>
#include <sstream>

#include "aqt/obs/export.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {

TraceEventLog::TraceEventLog() : epoch_ticks_(clock_.ticks()) {}

std::uint64_t TraceEventLog::now_nanos() const {
  const std::uint64_t t = clock_.ticks();
  return t > epoch_ticks_ ? clock_.to_nanos(t - epoch_ticks_) : 0;
}

void TraceEventLog::complete(std::string name, const char* category,
                             std::uint64_t ts_nanos,
                             std::uint64_t dur_nanos, std::uint32_t tid) {
  events_.push_back(TraceEvent{std::move(name), category, 'X', ts_nanos,
                               dur_nanos, tid});
}

void TraceEventLog::instant(std::string name, const char* category,
                            std::uint64_t ts_nanos, std::uint32_t tid) {
  events_.push_back(
      TraceEvent{std::move(name), category, 'i', ts_nanos, 0, tid});
}

void TraceEventLog::name_thread(std::uint32_t tid, const std::string& name) {
  thread_names_.emplace_back(tid, name);
}

void TraceEventLog::merge_from(const TraceEventLog& other) {
  // Both epochs are readings of the same monotonic tick source, so the
  // difference maps other-relative timestamps into this timebase exactly;
  // an other-log older than this one clamps at 0 rather than underflowing.
  const bool other_later = other.epoch_ticks_ >= epoch_ticks_;
  const std::uint64_t shift =
      clock_.to_nanos(other_later ? other.epoch_ticks_ - epoch_ticks_
                                  : epoch_ticks_ - other.epoch_ticks_);
  for (TraceEvent ev : other.events_) {
    if (other_later)
      ev.ts_nanos += shift;
    else
      ev.ts_nanos = ev.ts_nanos > shift ? ev.ts_nanos - shift : 0;
    events_.push_back(std::move(ev));
  }
  for (const auto& [tid, name] : other.thread_names_)
    name_thread(tid, name);
}

namespace {

/// Escapes the few JSON-special characters span names can contain.
void append_escaped(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20)
      os << ' ';
    else
      os << c;
  }
}

/// Nanoseconds as decimal microseconds ("12.345").
void append_micros(std::ostringstream& os, std::uint64_t nanos) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(nanos / 1000),
                static_cast<unsigned long long>(nanos % 1000));
  os << buf;
}

}  // namespace

std::string TraceEventLog::to_json(const std::string& process_name) const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  sep();
  os << R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
     << R"("args":{"name":")";
  append_escaped(os, process_name);
  os << "\"}}";
  for (const auto& [tid, name] : thread_names_) {
    sep();
    os << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << tid
       << R"(,"args":{"name":")";
    append_escaped(os, name);
    os << "\"}}";
  }

  for (const TraceEvent& ev : events_) {
    sep();
    os << "{\"name\":\"";
    append_escaped(os, ev.name);
    os << "\",\"cat\":\"" << ev.category << "\",\"ph\":\"" << ev.ph
       << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    append_micros(os, ev.ts_nanos);
    if (ev.ph == 'X') {
      os << ",\"dur\":";
      append_micros(os, ev.dur_nanos);
    }
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

void TraceEventLog::write(const std::string& path,
                          const std::string& process_name) const {
  write_file(path, to_json(process_name));
}

PhaseTraceRecorder::PhaseTraceRecorder(TraceEventLog& log, Config config)
    : log_(log), config_(config) {
  AQT_REQUIRE(config_.stride >= 1, "trace recorder stride must be >= 1");
  AQT_REQUIRE(config_.max_steps >= 1,
              "trace recorder max_steps must be >= 1");
}

bool PhaseTraceRecorder::begin_step(Time t) {
  recording_ = steps_ % config_.stride == 0 && recorded_ < config_.max_steps;
  ++steps_;
  if (!recording_) return false;
  current_step_ = t;
  step_start_ = log_.now_nanos();
  return true;
}

void PhaseTraceRecorder::begin_phase(StepPhase) {
  phase_start_ = log_.now_nanos();
}

void PhaseTraceRecorder::end_phase(StepPhase phase) {
  const std::uint64_t now = log_.now_nanos();
  log_.complete(to_string(phase), "aqt.phase", phase_start_,
                now > phase_start_ ? now - phase_start_ : 0, config_.tid);
}

void PhaseTraceRecorder::end_step(std::uint8_t) {
  if (!recording_) return;
  const std::uint64_t now = log_.now_nanos();
  log_.complete("step " + std::to_string(current_step_), "aqt.step",
                step_start_, now > step_start_ ? now - step_start_ : 0,
                config_.tid);
  ++recorded_;
  recording_ = false;
}

}  // namespace aqt::obs
