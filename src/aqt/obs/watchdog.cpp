#include "aqt/obs/watchdog.hpp"

#include <algorithm>
#include <sstream>

#include "aqt/obs/registry.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {

const char* to_string(WatchdogVerdict v) {
  switch (v) {
    case WatchdogVerdict::kUndecided:
      return "undecided";
    case WatchdogVerdict::kStable:
      return "stable";
    case WatchdogVerdict::kGrowthSuspected:
      return "growth-suspected";
  }
  return "?";
}

namespace {

/// The shared two-signal fit over a uniform-spacing window.  `times` may
/// be empty, in which case sample index is the time axis.
WatchdogCheck fit_window(const std::vector<Time>& times,
                         const std::vector<std::uint64_t>& backlog,
                         const WatchdogConfig& config) {
  WatchdogCheck check;
  const std::size_t n = backlog.size();
  if (n < std::max<std::size_t>(config.min_samples, 4)) return check;

  // Least-squares slope of backlog vs time.  Accumulation is over a
  // bounded window (<= config.window samples), not a merge path, so
  // double precision is exact enough and order is fixed.
  double sum_t = 0.0;
  double sum_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_t += times.empty() ? static_cast<double>(i)
                           : static_cast<double>(times[i]);
    sum_y += static_cast<double>(backlog[i]);
  }
  const double mean_t = sum_t / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dt = (times.empty() ? static_cast<double>(i)
                                     : static_cast<double>(times[i])) -
                      mean_t;
    sxx += dt * dt;
    sxy += dt * (static_cast<double>(backlog[i]) - mean_y);
  }
  check.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  check.mean = mean_y;

  // Late/early thirds ratio — the classify_growth decision rule.
  const std::size_t third = n / 3;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < third; ++i) {
    early += static_cast<double>(backlog[i]);
    late += static_cast<double>(backlog[n - third + i]);
  }
  const double early_mean = third > 0 ? early / static_cast<double>(third)
                                      : 0.0;
  const double late_mean = third > 0 ? late / static_cast<double>(third)
                                     : 0.0;
  check.ratio = late_mean / std::max(early_mean, 1.0);

  // Growth needs every signal: the ratio says the trend is up, the slope
  // says it is fast enough to double the backlog within doubling_horizon
  // window-spans (filters noise wiggle on flat queues), and the absolute
  // floor says the backlog is large enough for the trend to mean anything.
  const double span = times.empty()
                          ? static_cast<double>(n)
                          : static_cast<double>(times.back() - times.front() +
                                                1);
  const double needed =
      check.mean / std::max(span * config.doubling_horizon, 1.0);
  if (check.ratio >= config.ratio_slack && check.slope > 0.0 &&
      check.slope >= needed && late_mean >= config.min_backlog)
    check.verdict = WatchdogVerdict::kGrowthSuspected;
  else
    check.verdict = WatchdogVerdict::kStable;
  return check;
}

}  // namespace

WatchdogCheck analyze_series(const std::vector<std::uint64_t>& samples,
                             const WatchdogConfig& config) {
  return fit_window({}, samples, config);
}

StabilityWatchdog::StabilityWatchdog(WatchdogConfig config)
    : config_(config) {
  AQT_REQUIRE(config_.check_every >= 2, "watchdog check_every must be >= 2");
  AQT_REQUIRE(config_.window >= 8, "watchdog window must be >= 8");
  AQT_REQUIRE(config_.min_samples >= 4,
              "watchdog min_samples must be >= 4");
  times_.reserve(config_.window);
  backlog_.reserve(config_.window);
}

void StabilityWatchdog::compact() {
  // Keep samples landing on the doubled stride; retained samples are
  // consecutive multiples of the current stride, so exactly every other
  // one survives and the history keeps covering the whole run.
  const Time doubled = sample_stride_ * 2;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] % doubled != 0) continue;
    times_[kept] = times_[i];
    backlog_[kept] = backlog_[i];
    ++kept;
  }
  times_.resize(kept);
  backlog_.resize(kept);
  sample_stride_ = doubled;
}

void StabilityWatchdog::on_step(const StepSample& sample, const Engine&) {
  if (sample.t % sample_stride_ == 0) {
    if (times_.size() == config_.window) compact();
    if (sample.t % sample_stride_ == 0) {
      times_.push_back(sample.t);
      backlog_.push_back(sample.in_flight);
    }
  }
  if (sample.t % config_.check_every == 0) run_check(sample.t);
}

void StabilityWatchdog::run_check(Time at) {
  ++checks_;
  last_ = fit_window(times_, backlog_, config_);
  last_.at = at;
  history_.push_back(last_);
  if (last_.verdict == WatchdogVerdict::kGrowthSuspected) {
    if (verdict_ != WatchdogVerdict::kGrowthSuspected) first_flag_ = at;
    verdict_ = WatchdogVerdict::kGrowthSuspected;  // Latches.
  } else if (verdict_ == WatchdogVerdict::kUndecided &&
             last_.verdict == WatchdogVerdict::kStable) {
    verdict_ = WatchdogVerdict::kStable;
  }
}

std::string StabilityWatchdog::summary() const {
  std::ostringstream os;
  os << "watchdog: " << to_string(verdict_) << " after " << checks_
     << " check(s)";
  if (verdict_ == WatchdogVerdict::kGrowthSuspected)
    os << ", first flagged at step " << first_flag_;
  if (checks_ > 0) {
    os << " (last: slope " << last_.slope << " pkts/step, ratio "
       << last_.ratio << ", mean backlog " << last_.mean << ")";
  }
  os << '\n';
  WatchdogVerdict shown = WatchdogVerdict::kUndecided;
  for (const WatchdogCheck& c : history_) {
    if (c.verdict == shown) continue;
    shown = c.verdict;
    os << "  @step " << c.at << ": " << to_string(c.verdict) << " (slope "
       << c.slope << ", ratio " << c.ratio << ")\n";
  }
  return os.str();
}

void StabilityWatchdog::collect_metrics(MetricRegistry& registry) const {
  registry
      .counter("aqt_watchdog_checks_total",
               "Online stability checks performed")
      .set(checks_);
  registry
      .gauge("aqt_watchdog_flag",
             "1 when linear backlog growth is suspected, else 0")
      .set(verdict_ == WatchdogVerdict::kGrowthSuspected ? 1.0 : 0.0);
  registry
      .gauge("aqt_watchdog_first_flag_step",
             "Step of the first growth flag (0 = never flagged)")
      .set(static_cast<double>(first_flag_));
  registry
      .gauge("aqt_watchdog_slope_packets_per_step",
             "Latest fitted backlog slope")
      .set(last_.slope);
  registry
      .gauge("aqt_watchdog_window_ratio",
             "Latest late/early window backlog ratio")
      .set(last_.ratio);
  registry
      .gauge("aqt_watchdog_window_mean_packets",
             "Latest window mean backlog")
      .set(last_.mean);
}

}  // namespace aqt::obs
