// Chrome trace_event / Perfetto-compatible trace export.
//
// TraceEventLog collects spans and instants and renders the JSON object
// format of the Trace Event specification — `{"traceEvents":[...]}` with
// "X" (complete), "i" (instant), and "M" (metadata) records — which both
// chrome://tracing and ui.perfetto.dev open directly.  Timestamps are
// microseconds relative to the log's construction (each log carries its
// own TickClock epoch; no process-global state), durations are
// microseconds, and 3 fractional digits preserve nanosecond resolution.
//
// Two producers feed it:
//   * PhaseTraceRecorder — a StepPhaseSink that turns the engine's
//     substep brackets (transmit/absorb/inject/record/audit) into nested
//     spans, sampling every `stride` steps and capping total recorded
//     steps so a million-step run yields a viewable file;
//   * the run-pool (runner/pool.hpp PoolOptions::trace) — one span per
//     executed cell on the worker's own thread track, which is what makes
//     a flat parallel speedup visually diagnosable.
//
// The log is thread-compatible, not thread-safe: concurrent producers
// each write a private log, then merge_from() combines them after the
// join (the pool merges in worker-id order, so event order in the file is
// deterministic up to the wall-clock values themselves).
//
// Like every observability surface here the producers are write-only:
// attaching a PhaseTraceRecorder never changes a run (trace-hash byte
// identity; tests/obs and the aqt-fuzz observer-effect phase).
//
// The emitted JSON is pinned by schemas/trace_event.schema.json; CI
// validates every artifact against it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/obs_sink.hpp"
#include "aqt/obs/profiler.hpp"

namespace aqt::obs {

/// One collected event; ph is 'X' (complete), 'i' (instant) or 'M'
/// (metadata, args.name carries the track name).
struct TraceEvent {
  std::string name;
  const char* category = "aqt";
  char ph = 'X';
  std::uint64_t ts_nanos = 0;   ///< Relative to the log's epoch.
  std::uint64_t dur_nanos = 0;  ///< 'X' only.
  std::uint32_t tid = 0;
};

class TraceEventLog {
 public:
  TraceEventLog();

  /// Nanoseconds since the log's epoch (a raw tick read, calibrated).
  [[nodiscard]] std::uint64_t now_nanos() const;

  void complete(std::string name, const char* category,
                std::uint64_t ts_nanos, std::uint64_t dur_nanos,
                std::uint32_t tid = 0);
  void instant(std::string name, const char* category,
               std::uint64_t ts_nanos, std::uint32_t tid = 0);
  /// Names a thread track ("worker 0", "engine", ...).
  void name_thread(std::uint32_t tid, const std::string& name);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Appends another log's events, shifting them from `other`'s epoch
  /// into this log's timebase (the epochs are tick readings of the same
  /// clock, so the shift is exact).
  void merge_from(const TraceEventLog& other);

  /// The full trace JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string to_json(const std::string& process_name) const;

  /// Writes to_json to `path` (export.hpp write_file semantics).
  void write(const std::string& path, const std::string& process_name) const;

 private:
  TickClock clock_;
  std::uint64_t epoch_ticks_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names_;
};

/// Turns engine substep brackets into trace spans: per sampled step one
/// enclosing "step N" span with one child span per phase.  Sampling and
/// the step cap keep files bounded: at most `max_steps` recorded steps,
/// every `stride`-th step each.
class PhaseTraceRecorder final : public StepPhaseSink {
 public:
  struct Config {
    std::uint64_t stride = 16;     ///< Record every stride-th step.
    std::uint64_t max_steps = 4096;  ///< Recorded-step cap.
    std::uint32_t tid = 0;         ///< Thread track to emit on.
  };

  /// Borrows `log`; it must outlive the recorder.
  explicit PhaseTraceRecorder(TraceEventLog& log)
      : PhaseTraceRecorder(log, Config()) {}
  PhaseTraceRecorder(TraceEventLog& log, Config config);

  [[nodiscard]] bool begin_step(Time t) override;
  void begin_phase(StepPhase phase) override;
  void end_phase(StepPhase phase) override;
  void end_step(std::uint8_t skipped_phase_mask) override;

  [[nodiscard]] std::uint64_t recorded_steps() const { return recorded_; }

 private:
  TraceEventLog& log_;
  Config config_;
  std::uint64_t steps_ = 0;
  std::uint64_t recorded_ = 0;
  Time current_step_ = 0;
  std::uint64_t step_start_ = 0;
  std::uint64_t phase_start_ = 0;
  bool recording_ = false;
};

}  // namespace aqt::obs
