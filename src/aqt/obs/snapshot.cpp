#include "aqt/obs/snapshot.hpp"

#include "aqt/core/engine.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/metrics.hpp"
#include "aqt/obs/profiler.hpp"
#include "aqt/obs/registry.hpp"

namespace aqt::obs {

void collect_engine_metrics(const Engine& engine, MetricRegistry& registry) {
  const Metrics& m = engine.metrics();
  const Graph& g = engine.graph();
  const std::uint64_t steps = m.steps_observed();

  registry.counter("aqt_steps_total", "Engine steps executed").set(steps);
  registry
      .counter("aqt_injected_total",
               "Packets created (initial configuration plus injections)")
      .set(engine.total_injected());
  registry.counter("aqt_absorbed_total", "Packets absorbed at their route end")
      .set(engine.total_absorbed());
  registry.counter("aqt_sends_total", "Packet-over-edge transmissions")
      .set(m.sends());

  registry.gauge("aqt_in_flight", "Live packets sitting in buffers")
      .set(static_cast<double>(engine.packets_in_flight()));
  registry
      .gauge("aqt_max_queue_packets",
             "Largest single buffer ever observed (stability bound Q_i)")
      .set(static_cast<double>(m.max_queue_global()));
  registry
      .gauge("aqt_max_residence_steps",
             "Longest single-buffer residence (compare ceil(w*r))")
      .set(static_cast<double>(m.max_residence_global()));
  registry.gauge("aqt_max_latency_steps", "Largest end-to-end latency")
      .set(static_cast<double>(m.max_latency()));
  registry.gauge("aqt_mean_latency_steps", "Mean end-to-end latency")
      .set(m.mean_latency());

  const double steps_d = static_cast<double>(steps);
  registry
      .gauge("aqt_injection_rate_per_step",
             "Packets injected per executed step (0 before any step)")
      .set(steps == 0 ? 0.0
                      : static_cast<double>(engine.total_injected()) / steps_d);
  registry
      .gauge("aqt_absorption_rate_per_step",
             "Packets absorbed per executed step (0 before any step)")
      .set(steps == 0 ? 0.0
                      : static_cast<double>(engine.total_absorbed()) / steps_d);
  registry
      .gauge("aqt_mean_occupancy_packets",
             "Mean per-step system occupancy (live packets)")
      .set(m.mean_occupancy());
  registry
      .gauge("aqt_peak_occupancy_packets",
             "Largest per-step system occupancy")
      .set(static_cast<double>(m.peak_occupancy()));

  registry
      .gauge("aqt_route_pool_bytes",
             "Bytes of interned route storage (deduplicated edge pool)")
      .set(static_cast<double>(engine.route_table().pool_bytes()));
  registry
      .counter("aqt_arena_recycled_total",
               "Packet arena slots reused from the free list")
      .set(engine.arena().recycled_total());

  registry
      .histogram("aqt_latency_steps", "End-to-end latency distribution")
      .merge(m.latency_histogram());
  registry
      .histogram("aqt_queue_depth_packets",
                 "End-of-step nonempty-buffer depth distribution")
      .merge(m.queue_depth_histogram());
  registry
      .histogram("aqt_residence_steps",
                 "Single-buffer residence distribution over all sends")
      .merge(m.residence_histogram());

  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const std::string& name = g.edge(e).name;
    if (m.max_queue(e) != 0) {
      registry
          .gauge("aqt_edge_max_queue_packets",
                 "Largest buffer observed on this edge", "edge", name)
          .set(static_cast<double>(m.max_queue(e)));
    }
    if (m.max_residence(e) != 0) {
      registry
          .gauge("aqt_edge_max_residence_steps",
                 "Longest residence in this edge's buffer", "edge", name)
          .set(static_cast<double>(m.max_residence(e)));
    }
    if (m.sends(e) != 0) {
      registry
          .counter("aqt_edge_sends_total", "Packets that crossed this edge",
                   "edge", name)
          .set(m.sends(e));
    }
  }
}

void collect_profile_metrics(const StepProfiler& profiler,
                             MetricRegistry& registry) {
  const StepProfiler::Report rep = profiler.report();

  registry.counter("aqt_profile_steps_total", "Steps timed by the profiler")
      .set(rep.steps);
  registry
      .gauge("aqt_profile_wall_seconds",
             "Total in-step wall time (stride-sampled estimate)")
      .set(rep.wall_seconds());
  registry
      .gauge("aqt_profile_steps_per_second",
             "Steps per second of measured step time")
      .set(rep.steps_per_second());

  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    const char* phase = to_string(static_cast<StepPhase>(i));
    registry
        .gauge("aqt_profile_phase_seconds",
               "Wall-clock time spent in this engine substep", "phase", phase)
        .set(rep.phases[i].seconds());
    registry
        .counter("aqt_profile_phase_calls",
                 "Times this engine substep ran", "phase", phase)
        .set(rep.phases[i].calls);
  }

  registry
      .histogram("aqt_profile_step_nanos",
                 "Whole-step wall-time distribution over sampled steps (nanoseconds)")
      .merge(profiler.step_nanos_histogram());
}

}  // namespace aqt::obs
