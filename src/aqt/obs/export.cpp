#include "aqt/obs/export.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

/// Shortest round-trippable decimal for a double; integral values print
/// without a trailing ".0" so counters-as-gauges stay clean.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus label values escape backslash, double-quote, and newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\')
      out += "\\\\";
    else if (c == '"')
      out += "\\\"";
    else if (c == '\n')
      out += "\\n";
    else
      out += c;
  }
  return out;
}

/// `name{key="value"}` or bare `name`; `extra` appends e.g. `le="..."`.
std::string prom_series(const std::string& name,
                        const MetricRegistry::Family& fam,
                        const MetricRegistry::Cell& cell,
                        const std::string& extra = "") {
  std::string out = name;
  if (!fam.label_key.empty() || !extra.empty()) {
    out += '{';
    if (!fam.label_key.empty()) {
      out += fam.label_key + "=\"" + prom_escape(cell.label) + '"';
      if (!extra.empty()) out += ',';
    }
    out += extra;
    out += '}';
  }
  return out;
}

/// CSV fields never need quoting: metric names/labels are [a-z0-9_.:-] by
/// construction and values are numbers.  Assert rather than quote.
void csv_row(std::ostream& os, const std::string& name,
             const std::string& label, const char* type, const char* field,
             const std::string& value) {
  AQT_REQUIRE(label.find(',') == std::string::npos &&
                  label.find('"') == std::string::npos &&
                  label.find('\n') == std::string::npos,
              "CSV export: label needs quoting: " << label);
  os << name << ',' << label << ',' << type << ',' << field << ',' << value
     << '\n';
}

}  // namespace

std::string to_prometheus(const MetricRegistry& registry) {
  std::ostringstream os;
  for (const auto& fam : registry.families()) {
    os << "# HELP " << fam.name << ' ' << fam.help << '\n';
    os << "# TYPE " << fam.name << ' ' << to_string(fam.type) << '\n';
    for (const auto& cell : fam.cells) {
      switch (fam.type) {
        case MetricType::kCounter:
          os << prom_series(fam.name, fam, cell) << ' ' << cell.counter.value()
             << '\n';
          break;
        case MetricType::kGauge:
          os << prom_series(fam.name, fam, cell) << ' '
             << fmt_double(cell.gauge.value()) << '\n';
          break;
        case MetricType::kHistogram: {
          const Histogram& h = cell.histogram;
          // Cumulative buckets; trailing all-empty buckets are elided but the
          // bucket containing max() is always kept so le bounds cover the
          // data, and +Inf is mandatory.
          std::uint64_t cum = 0;
          std::size_t last = 0;
          for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            if (h.bucket_count(b) != 0) last = b;
          }
          for (std::size_t b = 0; b <= last; ++b) {
            cum += h.bucket_count(b);
            os << prom_series(fam.name + "_bucket", fam, cell,
                              "le=\"" +
                                  std::to_string(
                                      Histogram::bucket_upper_bound(b)) +
                                  '"')
               << ' ' << cum << '\n';
          }
          os << prom_series(fam.name + "_bucket", fam, cell, "le=\"+Inf\"")
             << ' ' << h.count() << '\n';
          os << prom_series(fam.name + "_sum", fam, cell) << ' '
             << fmt_double(h.sum()) << '\n';
          os << prom_series(fam.name + "_count", fam, cell) << ' ' << h.count()
             << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

std::string to_json(const MetricRegistry& registry, const std::string& tool) {
  std::ostringstream os;
  os << "{\"schema\":\"aqt-metrics/1\",\"tool\":\"" << json_escape(tool)
     << "\",\"metrics\":[";
  bool first_fam = true;
  for (const auto& fam : registry.families()) {
    if (!first_fam) os << ',';
    first_fam = false;
    os << "{\"name\":\"" << fam.name << "\",\"type\":\""
       << to_string(fam.type) << "\",\"help\":\"" << json_escape(fam.help)
       << "\",\"label_key\":\"" << json_escape(fam.label_key)
       << "\",\"values\":[";
    bool first_cell = true;
    for (const auto& cell : fam.cells) {
      if (!first_cell) os << ',';
      first_cell = false;
      os << "{\"label\":\"" << json_escape(cell.label) << "\",";
      switch (fam.type) {
        case MetricType::kCounter:
          os << "\"value\":" << cell.counter.value();
          break;
        case MetricType::kGauge:
          os << "\"value\":" << fmt_double(cell.gauge.value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = cell.histogram;
          os << "\"count\":" << h.count() << ",\"sum\":" << fmt_double(h.sum())
             << ",\"min\":" << h.min() << ",\"max\":" << h.max()
             << ",\"mean\":" << fmt_double(h.mean());
          if (h.count() > 0) {
            os << ",\"p50\":" << h.quantile(0.5)
               << ",\"p90\":" << h.quantile(0.9)
               << ",\"p99\":" << h.quantile(0.99);
          } else {
            os << ",\"p50\":0,\"p90\":0,\"p99\":0";
          }
          break;
        }
      }
      os << '}';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string to_csv(const MetricRegistry& registry) {
  std::ostringstream os;
  os << "name,label,type,field,value\n";
  for (const auto& fam : registry.families()) {
    const char* type = to_string(fam.type);
    for (const auto& cell : fam.cells) {
      switch (fam.type) {
        case MetricType::kCounter:
          csv_row(os, fam.name, cell.label, type, "value",
                  std::to_string(cell.counter.value()));
          break;
        case MetricType::kGauge:
          csv_row(os, fam.name, cell.label, type, "value",
                  fmt_double(cell.gauge.value()));
          break;
        case MetricType::kHistogram: {
          const Histogram& h = cell.histogram;
          csv_row(os, fam.name, cell.label, type, "count",
                  std::to_string(h.count()));
          csv_row(os, fam.name, cell.label, type, "sum", fmt_double(h.sum()));
          csv_row(os, fam.name, cell.label, type, "min",
                  std::to_string(h.min()));
          csv_row(os, fam.name, cell.label, type, "max",
                  std::to_string(h.max()));
          csv_row(os, fam.name, cell.label, type, "mean",
                  fmt_double(h.mean()));
          csv_row(os, fam.name, cell.label, type, "p50",
                  std::to_string(h.count() ? h.quantile(0.5) : 0));
          csv_row(os, fam.name, cell.label, type, "p90",
                  std::to_string(h.count() ? h.quantile(0.9) : 0));
          csv_row(os, fam.name, cell.label, type, "p99",
                  std::to_string(h.count() ? h.quantile(0.99) : 0));
          break;
        }
      }
    }
  }
  return os.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  AQT_REQUIRE(static_cast<bool>(os), "cannot open for writing: " << path);
  os << text;
  os.flush();
  AQT_REQUIRE(static_cast<bool>(os), "write failed: " << path);
}

void export_cli_metrics(const Cli& cli, const MetricRegistry& registry,
                        const std::string& tool) {
  const std::string json_path = cli.get("metrics-out");
  const std::string prom_path = cli.get("metrics-prom");
  const std::string csv_path = cli.get("metrics-csv");
  if (!json_path.empty()) {
    write_file(json_path, to_json(registry, tool));
    std::cout << "metrics snapshot written to " << json_path << "\n";
  }
  if (!prom_path.empty()) {
    write_file(prom_path, to_prometheus(registry));
    std::cout << "metrics (prometheus) written to " << prom_path << "\n";
  }
  if (!csv_path.empty()) {
    write_file(csv_path, to_csv(registry));
    std::cout << "metrics (csv) written to " << csv_path << "\n";
  }
}

}  // namespace aqt::obs
