// Machine-readable exporters for the MetricRegistry.
//
// Three formats, one schema, shared by every tool (aqt-sim --metrics-out,
// aqt-verify/--lint/--fuzz --metrics-out, examples, the perf bench):
//
//  * to_prometheus: the Prometheus text exposition format (version 0.0.4).
//    Counters/gauges are single samples; histograms expand into cumulative
//    `_bucket{le="..."}` samples (the log-bucket upper bounds), `_sum`, and
//    `_count`, so any Prometheus scraper or promtool ingests them directly.
//  * to_json: one snapshot object, schema "aqt-metrics/1":
//      {"schema":"aqt-metrics/1","tool":"...",
//       "metrics":[{"name":...,"type":...,"help":...,"label_key":...,
//                   "values":[{"label":...,...}]}]}
//    Counter values are integers; gauges doubles; histograms expand into
//    {count,sum,min,max,mean,p50,p90,p99}.  Family and cell order is
//    registration order, so output is deterministic and golden-testable.
//  * to_csv: long format with the fixed header
//    `name,label,type,field,value` — one row per scalar, histograms
//    exploded into their summary fields.
//
// All formats obey the empty-denominator convention (core/metrics.hpp):
// means and rates of nothing are 0, never NaN/Inf, so every emitted number
// is finite.
#pragma once

#include <string>

#include "aqt/obs/registry.hpp"
#include "aqt/util/cli.hpp"

namespace aqt::obs {

std::string to_prometheus(const MetricRegistry& registry);

/// `tool` names the producer ("aqt-sim", "bench_e12_engine_perf", ...).
std::string to_json(const MetricRegistry& registry, const std::string& tool);

std::string to_csv(const MetricRegistry& registry);

/// Writes `text` to `path` (creating/truncating); throws PreconditionError
/// when the file cannot be opened.  Convenience for the tools' --metrics-*
/// flags.
void write_file(const std::string& path, const std::string& text);

/// Honors the shared --metrics-out / --metrics-prom / --metrics-csv flags
/// (declared via aqt::add_metrics_flags): writes each requested export of
/// `registry`, printing one confirmation line per file.  No-op when none of
/// the flags were given, so every tool can call it unconditionally.
void export_cli_metrics(const Cli& cli, const MetricRegistry& registry,
                        const std::string& tool);

}  // namespace aqt::obs
