// StepProfiler: wall-clock timing of the engine's substeps.
//
// Plugs into EngineConfig::profile (the StepPhaseSink interface of
// core/obs_sink.hpp) and accumulates, per phase (transmit, absorb, inject,
// record, audit): total time and call counts; per step: a log-bucket
// distribution of whole-step wall time; and overall steps/sec over the
// measured step time.  It is a pure observer — it reads the clock and its
// own counters, never engine state — so profiling cannot perturb a run
// (aqt-fuzz checks this against run-trace content hashes).
//
// Cost model: timestamps are raw tick-counter reads (rdtsc on x86-64, a
// register read; steady_clock elsewhere), and ALL timing is *sampled* on a
// kPhaseSampleStride cycle with two disjoint sample populations: steps at
// slot 0 get per-phase brackets (the intra-step clock reads), and steps at
// slot kStepTimeOffset get whole-step begin/end reads and nothing else —
// so the step-time sample measures steps the profiler itself did not
// disturb, and scaling it up cannot amplify the bracket cost.  Every other
// step pays only the two virtual calls and counter updates (call counts
// and the step count stay exact via the skipped-phase mask).  report()
// scales each sample by its inverse sampling fraction — steps of a run are
// statistically homogeneous, which is what makes the stride samples
// unbiased estimates of total step time and of the per-phase split.  This
// keeps the profiler's amortized cost near a quarter of a clock read per
// step — material when a step itself is a few hundred nanoseconds, where
// even two rdtsc reads per step would tax throughput by ~10%.  Ticks are
// converted to nanoseconds at report time using a per-instance calibration
// taken at construction; there is no process-global mutable state.  When
// profiling is off the engine's sink pointer is null and the cost is one
// branch per boundary; the tests/obs overhead test holds that under 2x on
// a reference workload (it is ~1x in practice).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "aqt/core/obs_sink.hpp"
#include "aqt/util/histogram.hpp"

namespace aqt::obs {

/// Monotonic tick source with per-instance nanosecond calibration.  On
/// x86-64 `ticks()` is a raw TSC read (~5ns, no serialization — fine for
/// coarse phase accounting); elsewhere it falls back to steady_clock, in
/// which case one tick is one nanosecond and calibration is the identity.
class TickClock {
 public:
  TickClock();

  [[nodiscard]] std::uint64_t ticks() const {
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  [[nodiscard]] std::uint64_t to_nanos(std::uint64_t ticks) const {
    return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                      ns_per_tick_);
  }

 private:
  double ns_per_tick_ = 1.0;
};

class StepProfiler final : public StepPhaseSink {
 public:
  /// Phase boundaries read the clock on steps == 0 (mod stride); whole-step
  /// time is sampled on steps == kStepTimeOffset (mod stride), which carry
  /// no intra-step brackets — so the step-time sample measures undisturbed
  /// steps and scaling it up does not amplify the profiler's own bracket
  /// cost.  Counts stay exact on every step (see the header's cost model).
  static constexpr std::uint64_t kPhaseSampleStride = 16;
  static constexpr std::uint64_t kStepTimeOffset = 8;

  /// Returns true (phase brackets wanted) on sampled steps only.
  [[nodiscard]] bool begin_step(Time t) override;
  void begin_phase(StepPhase phase) override;
  void end_phase(StepPhase phase) override;
  void end_step(std::uint8_t skipped_phase_mask) override;

  struct PhaseStats {
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
    [[nodiscard]] double seconds() const {
      return static_cast<double>(nanos) * 1e-9;
    }
  };

  struct Report {
    std::uint64_t steps = 0;
    /// Estimated total in-step wall time (sampled ticks scaled by the
    /// inverse sampling fraction).
    std::uint64_t total_step_nanos = 0;
    std::array<PhaseStats, kStepPhaseCount> phases;

    [[nodiscard]] double wall_seconds() const {
      return static_cast<double>(total_step_nanos) * 1e-9;
    }
    /// Steps per second of measured step time; 0 before any step completes
    /// (the empty-denominator convention of core/metrics.hpp).
    [[nodiscard]] double steps_per_second() const {
      return total_step_nanos == 0
                 ? 0.0
                 : static_cast<double>(steps) /
                       (static_cast<double>(total_step_nanos) * 1e-9);
    }
  };

  [[nodiscard]] Report report() const;

  /// Distribution of whole-step wall times in nanoseconds (log buckets)
  /// over the *sampled* steps — one entry per kPhaseSampleStride steps.
  [[nodiscard]] const Histogram& step_nanos_histogram() const {
    return step_nanos_;
  }

  /// Human-readable per-phase breakdown, one line per phase plus a totals
  /// line ("profile: 1234 steps, 56789 steps/sec ...").
  [[nodiscard]] std::string summary() const;

 private:
  struct PhaseTicks {
    std::uint64_t calls = 0;
    std::uint64_t ticks = 0;
  };

  TickClock clock_;
  std::uint64_t steps_ = 0;
  std::uint64_t bracketed_steps_ = 0;      ///< Steps with phase brackets.
  std::uint64_t bracketed_step_ticks_ = 0; ///< Wall total of those steps.
  std::uint64_t timed_steps_ = 0;          ///< Steps with whole-step timing.
  std::uint64_t timed_step_ticks_ = 0;     ///< Step time of timed steps.
  std::array<PhaseTicks, kStepPhaseCount> phases_{};
  Histogram step_nanos_;

  std::uint64_t step_start_ = 0;
  std::uint64_t phase_start_ = 0;
  std::uint64_t last_tick_ = 0;
  bool in_step_ = false;
  bool sampling_ = false;  ///< This step's phase boundaries read the clock.
  bool timing_ = false;    ///< This step's start/end read the clock.
};

}  // namespace aqt::obs
