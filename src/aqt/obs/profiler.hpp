// StepProfiler: wall-clock timing of the engine's substeps.
//
// Plugs into EngineConfig::profile (the StepPhaseSink interface of
// core/obs_sink.hpp) and accumulates, per phase (transmit, absorb, inject,
// record, audit): total nanoseconds and call counts; per step: a log-bucket
// distribution of whole-step wall time; and overall steps/sec over the
// measured step time.  It is a pure observer — it reads the clock and its
// own counters, never engine state — so profiling cannot perturb a run
// (aqt-fuzz checks this against run-trace content hashes).
//
// Cost model: two steady_clock reads per phase plus two per step.  When
// profiling is off the engine's sink pointer is null and the cost is one
// branch per boundary; the tests/obs overhead test holds that under 2x on a
// reference workload (it is ~1x in practice).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "aqt/core/obs_sink.hpp"
#include "aqt/util/histogram.hpp"

namespace aqt::obs {

class StepProfiler final : public StepPhaseSink {
 public:
  void begin_step(Time t) override;
  void begin_phase(StepPhase phase) override;
  void end_phase(StepPhase phase) override;
  void end_step() override;

  struct PhaseStats {
    std::uint64_t calls = 0;
    std::uint64_t nanos = 0;
    [[nodiscard]] double seconds() const {
      return static_cast<double>(nanos) * 1e-9;
    }
  };

  struct Report {
    std::uint64_t steps = 0;
    std::uint64_t total_step_nanos = 0;
    std::array<PhaseStats, kStepPhaseCount> phases;

    [[nodiscard]] double wall_seconds() const {
      return static_cast<double>(total_step_nanos) * 1e-9;
    }
    /// Steps per second of measured step time; 0 before any step completes
    /// (the empty-denominator convention of core/metrics.hpp).
    [[nodiscard]] double steps_per_second() const {
      return total_step_nanos == 0
                 ? 0.0
                 : static_cast<double>(steps) /
                       (static_cast<double>(total_step_nanos) * 1e-9);
    }
  };

  [[nodiscard]] Report report() const;

  /// Distribution of whole-step wall times in nanoseconds (log buckets).
  [[nodiscard]] const Histogram& step_nanos_histogram() const {
    return step_nanos_;
  }

  /// Human-readable per-phase breakdown, one line per phase plus a totals
  /// line ("profile: 1234 steps, 56789 steps/sec ...").
  [[nodiscard]] std::string summary() const;

 private:
  using Clock = std::chrono::steady_clock;

  std::uint64_t steps_ = 0;
  std::uint64_t total_step_nanos_ = 0;
  std::array<PhaseStats, kStepPhaseCount> phases_{};
  Histogram step_nanos_;

  Clock::time_point step_start_{};
  Clock::time_point phase_start_{};
  bool in_step_ = false;
};

}  // namespace aqt::obs
