#include "aqt/obs/profiler.hpp"

#include <bit>
#include <cstdio>

namespace aqt::obs {

TickClock::TickClock() {
#if defined(__x86_64__) || defined(_M_X64)
  // Calibrate this instance's TSC frequency against steady_clock over a
  // short spin.  ~200us once per profiler is negligible next to any run
  // worth profiling, and keeping the ratio per-instance avoids mutable
  // process-global state.
  using SteadyNanos = std::chrono::nanoseconds;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t tick_start = ticks();
  for (;;) {
    const auto wall_now = std::chrono::steady_clock::now();
    const auto elapsed =
        std::chrono::duration_cast<SteadyNanos>(wall_now - wall_start)
            .count();
    if (elapsed >= 200'000) {
      const std::uint64_t tick_now = ticks();
      if (tick_now > tick_start)
        ns_per_tick_ = static_cast<double>(elapsed) /
                       static_cast<double>(tick_now - tick_start);
      break;
    }
  }
#endif
}

bool StepProfiler::begin_step(Time) {
  in_step_ = true;
  const std::uint64_t slot = steps_ % kPhaseSampleStride;
  sampling_ = slot == 0;
  timing_ = slot == kStepTimeOffset;
  if (sampling_) {
    last_tick_ = clock_.ticks();
    step_start_ = last_tick_;
  } else if (timing_) {
    step_start_ = clock_.ticks();
  }
  return sampling_;
}

void StepProfiler::begin_phase(StepPhase) {
  if (in_step_) {
    // On sampled steps, reuse the previous boundary's tick: phases are
    // bracketed back-to-back by the engine, so the gap is loop control
    // only.  On unsampled steps the boundary is free.
    phase_start_ = last_tick_;
    return;
  }
  phase_start_ = clock_.ticks();
}

void StepProfiler::end_phase(StepPhase phase) {
  PhaseTicks& ps = phases_[static_cast<std::size_t>(phase)];
  ++ps.calls;
  if (in_step_ && !sampling_) return;
  const std::uint64_t now = clock_.ticks();
  last_tick_ = now;
  ps.ticks += now - phase_start_;
}

void StepProfiler::end_step(std::uint8_t skipped_phase_mask) {
  if (!in_step_) return;
  in_step_ = false;
  for (std::uint8_t mask = skipped_phase_mask; mask != 0; mask &= mask - 1)
    ++phases_[static_cast<unsigned>(std::countr_zero(mask))].calls;
  ++steps_;
  if (sampling_) {
    ++bracketed_steps_;
    // The final end_phase already read the clock; the difference brackets
    // the whole step (including the profiler's own intra-step reads) at no
    // extra cost — report() divides it out of the phase estimates.
    bracketed_step_ticks_ += last_tick_ - step_start_;
    return;
  }
  if (!timing_) return;
  const std::uint64_t elapsed = clock_.ticks() - step_start_;
  ++timed_steps_;
  timed_step_ticks_ += elapsed;
  step_nanos_.add(static_cast<std::int64_t>(clock_.to_nanos(elapsed)));
}

StepProfiler::Report StepProfiler::report() const {
  Report rep;
  rep.steps = steps_;
  // Extrapolate each sample population to the whole run: steps of a run are
  // statistically homogeneous (the header's cost-model argument), so total
  // step time is the timed (bracket-free) steps scaled by their inverse
  // sampling fraction, and phase time the bracketed steps scaled by theirs.
  if (timed_steps_ != 0) {
    rep.total_step_nanos = static_cast<std::uint64_t>(
        static_cast<double>(clock_.to_nanos(timed_step_ticks_)) *
        (static_cast<double>(steps_) / static_cast<double>(timed_steps_)));
  } else if (bracketed_steps_ != 0) {
    // Run too short to reach a timing slot: fall back to the bracketed
    // steps (slightly inflated by their own clock reads, but far better
    // than reporting zero).
    rep.total_step_nanos = static_cast<std::uint64_t>(
        static_cast<double>(clock_.to_nanos(bracketed_step_ticks_)) *
        (static_cast<double>(steps_) /
         static_cast<double>(bracketed_steps_)));
  }
  // Phase ticks are measured inside bracketed steps, whose wall time is
  // inflated by the brackets' own clock reads; dividing by the bracketed
  // steps' wall total cancels that inflation, so phase seconds distribute
  // the *clean* total-step estimate by the observed per-phase shares.
  const double phase_scale =
      bracketed_step_ticks_ == 0
          ? 1.0
          : static_cast<double>(rep.total_step_nanos) /
                static_cast<double>(clock_.to_nanos(bracketed_step_ticks_));
  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    rep.phases[i].calls = phases_[i].calls;
    rep.phases[i].nanos = static_cast<std::uint64_t>(
        static_cast<double>(clock_.to_nanos(phases_[i].ticks)) * phase_scale);
  }
  return rep;
}

std::string StepProfiler::summary() const {
  const Report rep = report();
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "profile: %llu steps in %.3fs (%.0f steps/sec)\n",
                static_cast<unsigned long long>(rep.steps),
                rep.wall_seconds(), rep.steps_per_second());
  out += buf;
  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    const PhaseStats& ps = rep.phases[i];
    const double share =
        rep.total_step_nanos == 0
            ? 0.0
            : 100.0 * static_cast<double>(ps.nanos) /
                  static_cast<double>(rep.total_step_nanos);
    std::snprintf(buf, sizeof buf, "  %-8s %12.6fs  %5.1f%%  (%llu calls)\n",
                  to_string(static_cast<StepPhase>(i)), ps.seconds(), share,
                  static_cast<unsigned long long>(ps.calls));
    out += buf;
  }
  out += "  per-step wall (sampled): " + step_nanos_.summary() + " (ns)\n";
  return out;
}

}  // namespace aqt::obs
