#include "aqt/obs/profiler.hpp"

#include <cstdio>

namespace aqt::obs {

void StepProfiler::begin_step(Time) {
  step_start_ = Clock::now();
  in_step_ = true;
}

void StepProfiler::begin_phase(StepPhase) { phase_start_ = Clock::now(); }

void StepProfiler::end_phase(StepPhase phase) {
  const auto elapsed = Clock::now() - phase_start_;
  PhaseStats& ps = phases_[static_cast<std::size_t>(phase)];
  ++ps.calls;
  ps.nanos += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

void StepProfiler::end_step() {
  if (!in_step_) return;
  in_step_ = false;
  const auto elapsed = Clock::now() - step_start_;
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  ++steps_;
  total_step_nanos_ += nanos;
  step_nanos_.add(static_cast<std::int64_t>(nanos));
}

StepProfiler::Report StepProfiler::report() const {
  Report rep;
  rep.steps = steps_;
  rep.total_step_nanos = total_step_nanos_;
  rep.phases = phases_;
  return rep;
}

std::string StepProfiler::summary() const {
  const Report rep = report();
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "profile: %llu steps in %.3fs (%.0f steps/sec)\n",
                static_cast<unsigned long long>(rep.steps),
                rep.wall_seconds(), rep.steps_per_second());
  out += buf;
  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    const PhaseStats& ps = rep.phases[i];
    const double share =
        rep.total_step_nanos == 0
            ? 0.0
            : 100.0 * static_cast<double>(ps.nanos) /
                  static_cast<double>(rep.total_step_nanos);
    std::snprintf(buf, sizeof buf, "  %-8s %12.6fs  %5.1f%%  (%llu calls)\n",
                  to_string(static_cast<StepPhase>(i)), ps.seconds(), share,
                  static_cast<unsigned long long>(ps.calls));
    out += buf;
  }
  out += "  per-step wall: " + step_nanos_.summary() + " (ns)\n";
  return out;
}

}  // namespace aqt::obs
