#include "aqt/obs/events.hpp"

#include <cstdio>
#include <istream>
#include <ostream>

#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Strict single-line parser for the event grammar: one flat JSON object
/// whose values are strings, integers, booleans, or arrays of strings.
class LineParser {
 public:
  LineParser(const std::string& line, const std::string& where)
      : s_(line), where_(where) {}

  void fail(const std::string& what) const {
    AQT_REQUIRE(false, "" << where_ << ": " << what << " at byte " << pos_);
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of line");
    return s_[pos_];
  }
  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool at_end() const { return pos_ >= s_.size(); }

  std::string string_value() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4U;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          if (code > 0xff) fail("non-latin \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  std::int64_t int_value() {
    const bool neg = consume('-');
    if (peek() < '0' || peek() > '9') fail("expected digit");
    std::uint64_t v = 0;
    while (!at_end() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const auto digit = static_cast<std::uint64_t>(take() - '0');
      if (v > (UINT64_MAX - digit) / 10) fail("integer overflow");
      v = v * 10 + digit;
    }
    if (neg) {
      if (v > 9223372036854775808ULL) fail("integer overflow");
      return -static_cast<std::int64_t>(v);
    }
    if (v > INT64_MAX) fail("integer overflow");
    return static_cast<std::int64_t>(v);
  }

  bool bool_value() {
    if (consume('t')) {
      expect('r');
      expect('u');
      expect('e');
      return true;
    }
    expect('f');
    expect('a');
    expect('l');
    expect('s');
    expect('e');
    return false;
  }

  std::vector<std::string> string_array() {
    expect('[');
    std::vector<std::string> out;
    if (consume(']')) return out;
    for (;;) {
      out.push_back(string_value());
      if (consume(']')) return out;
      expect(',');
    }
  }

 private:
  const std::string& s_;
  const std::string& where_;
  std::size_t pos_ = 0;
};

std::uint64_t as_u64(std::int64_t v, LineParser& p, const char* key) {
  if (v < 0) p.fail(std::string("negative value for ") + key);
  return static_cast<std::uint64_t>(v);
}

ObsEvent parse_line(const std::string& line, const std::string& where) {
  LineParser p(line, where);
  ObsEvent ev;
  bool have_ev = false;
  std::string kind;
  p.expect('{');
  for (;;) {
    const std::string key = p.string_value();
    p.expect(':');
    if (key == "ev") {
      kind = p.string_value();
      have_ev = true;
    } else if (key == "t") {
      ev.t = p.int_value();
    } else if (key == "packet") {
      ev.packet = as_u64(p.int_value(), p, "packet");
    } else if (key == "tag") {
      ev.tag = as_u64(p.int_value(), p, "tag");
    } else if (key == "initial") {
      ev.initial = p.bool_value();
    } else if (key == "route") {
      ev.route = p.string_array();
    } else if (key == "edge") {
      ev.edge = p.string_value();
    } else if (key == "hop") {
      ev.hop = as_u64(p.int_value(), p, "hop");
    } else if (key == "residence") {
      ev.residence = p.int_value();
    } else if (key == "latency") {
      ev.latency = p.int_value();
    } else if (key == "name") {
      ev.name = p.string_value();
    } else {
      p.fail("unknown key '" + key + "'");
    }
    if (p.consume('}')) break;
    p.expect(',');
  }
  if (!p.at_end()) p.fail("trailing bytes after object");
  if (!have_ev) p.fail("missing \"ev\" key");
  if (kind == "inject") {
    ev.kind = ObsEvent::Kind::kInject;
    if (ev.route.empty()) p.fail("inject without route");
  } else if (kind == "send") {
    ev.kind = ObsEvent::Kind::kSend;
    if (ev.edge.empty()) p.fail("send without edge");
  } else if (kind == "absorb") {
    ev.kind = ObsEvent::Kind::kAbsorb;
  } else if (kind == "milestone") {
    ev.kind = ObsEvent::Kind::kMilestone;
    if (ev.name.empty()) p.fail("milestone without name");
  } else {
    p.fail("unknown event kind '" + kind + "'");
  }
  return ev;
}

}  // namespace

JsonlEventWriter::JsonlEventWriter(std::ostream& os, const Graph& graph)
    : os_(os), graph_(graph) {}

void JsonlEventWriter::on_inject(Time t, std::uint64_t ordinal,
                                 std::uint64_t tag, RouteSpan route,
                                 bool initial) {
  os_ << "{\"ev\":\"inject\",\"t\":" << t << ",\"packet\":" << ordinal
      << ",\"tag\":" << tag << ",\"initial\":" << (initial ? "true" : "false")
      << ",\"route\":[";
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (i > 0) os_ << ',';
    os_ << '"' << json_escape(graph_.edge(route[i]).name) << '"';
  }
  os_ << "]}\n";
  ++lines_;
}

void JsonlEventWriter::on_send(Time t, EdgeId e, std::uint64_t ordinal,
                               std::size_t hop, Time residence) {
  os_ << "{\"ev\":\"send\",\"t\":" << t << ",\"packet\":" << ordinal
      << ",\"edge\":\"" << json_escape(graph_.edge(e).name)
      << "\",\"hop\":" << hop << ",\"residence\":" << residence << "}\n";
  ++lines_;
}

void JsonlEventWriter::on_absorb(Time t, std::uint64_t ordinal, Time latency) {
  os_ << "{\"ev\":\"absorb\",\"t\":" << t << ",\"packet\":" << ordinal
      << ",\"latency\":" << latency << "}\n";
  ++lines_;
}

void JsonlEventWriter::milestone(Time t, const std::string& name) {
  os_ << "{\"ev\":\"milestone\",\"t\":" << t << ",\"name\":\""
      << json_escape(name) << "\"}\n";
  ++lines_;
}

std::vector<ObsEvent> parse_jsonl_events(std::istream& is,
                                         const std::string& name) {
  std::vector<ObsEvent> events;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    events.push_back(
        parse_line(line, name + ":" + std::to_string(lineno)));
  }
  return events;
}

}  // namespace aqt::obs
