// Bridges engine state into the MetricRegistry.
//
// collect_engine_metrics maps one Engine's Metrics — the quantities the
// paper's stability question is about — onto registry names:
//
//   aqt_steps_total, aqt_injected_total, aqt_absorbed_total, aqt_sends_total
//   aqt_in_flight, aqt_max_queue_packets           (Q_i bound, paper §1)
//   aqt_max_residence_steps                        (vs ceil(w*r), Thm 4.1)
//   aqt_max_latency_steps, aqt_mean_latency_steps
//   aqt_injection_rate_per_step, aqt_absorption_rate_per_step
//   aqt_mean_occupancy_packets, aqt_peak_occupancy_packets
//   histograms: aqt_latency_steps, aqt_queue_depth_packets,
//               aqt_residence_steps
//   per-edge (label edge="..."): aqt_edge_max_queue_packets,
//               aqt_edge_max_residence_steps, aqt_edge_sends_total
//
// collect_profile_metrics adds the StepProfiler's wall-clock view:
//   aqt_profile_steps_total, aqt_profile_wall_seconds,
//   aqt_profile_steps_per_second,
//   aqt_profile_phase_seconds{phase=...}, aqt_profile_phase_calls{phase=...},
//   aqt_profile_step_nanos (histogram)
//
// Both are additive: call them on one registry to get a combined snapshot,
// then hand it to export.hpp.  docs/MODEL.md maps these names back to the
// paper's quantities.
#pragma once

namespace aqt {
class Engine;
}

namespace aqt::obs {

class MetricRegistry;
class StepProfiler;

/// Populates `registry` from `engine`'s metrics.  Per-edge families only get
/// cells for edges with activity (nonzero max queue / sends), keeping big
/// sparse topologies exportable.
void collect_engine_metrics(const Engine& engine, MetricRegistry& registry);

/// Populates `registry` from a profiler's report.
void collect_profile_metrics(const StepProfiler& profiler,
                             MetricRegistry& registry);

}  // namespace aqt::obs
