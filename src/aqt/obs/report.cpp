#include "aqt/obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt::obs {

const std::vector<double>* ParsedTimeseries::find(
    const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return &series[i];
  }
  return nullptr;
}

ParsedTimeseries parse_timeseries_csv(const std::string& text) {
  ParsedTimeseries out;
  std::istringstream is(text);
  std::string line;
  AQT_REQUIRE(std::getline(is, line) && !line.empty(),
              "timeseries CSV: missing header line");
  {
    std::istringstream header(line);
    std::string field;
    while (std::getline(header, field, ',')) out.columns.push_back(field);
  }
  AQT_REQUIRE(!out.columns.empty(), "timeseries CSV: empty header");
  out.series.resize(out.columns.size());

  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    std::size_t col = 0;
    while (std::getline(row, field, ',')) {
      AQT_REQUIRE(col < out.columns.size(),
                  "timeseries CSV line " << lineno << ": too many fields");
      std::size_t used = 0;
      double value = 0.0;
      try {
        value = std::stod(field, &used);
      } catch (...) {
        used = 0;
      }
      AQT_REQUIRE(used == field.size() && !field.empty(),
                  "timeseries CSV line " << lineno << ": non-numeric field '"
                                         << field << "'");
      out.series[col].push_back(value);
      ++col;
    }
    AQT_REQUIRE(col == out.columns.size(),
                "timeseries CSV line " << lineno << ": expected "
                                       << out.columns.size() << " fields, got "
                                       << col);
  }
  return out;
}

namespace {

/// Minimal reader for the JSON subset export.hpp emits: objects, arrays,
/// strings with \-escapes, and plain numbers.  Position-tracked so errors
/// point somewhere useful.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    AQT_REQUIRE(pos_ < text_.size(), "metrics JSON: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    AQT_REQUIRE(peek() == c, "metrics JSON at byte "
                                 << pos_ << ": expected '" << c << "', got '"
                                 << text_[pos_] << "'");
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (true) {
      AQT_REQUIRE(pos_ < text_.size(), "metrics JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      AQT_REQUIRE(pos_ < text_.size(), "metrics JSON: dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          AQT_REQUIRE(pos_ + 4 <= text_.size(),
                      "metrics JSON: truncated \\u escape");
          // Our emitter only \u-escapes control bytes; fold to space.
          pos_ += 4;
          out += ' ';
          break;
        }
        default:
          out += esc;  // \" and \\ (and anything else, verbatim).
      }
    }
  }

  [[nodiscard]] double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    AQT_REQUIRE(pos_ > start, "metrics JSON at byte " << pos_
                                                      << ": expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<ParsedMetricFamily> parse_metrics_json(const std::string& text) {
  JsonCursor cur(text);
  std::vector<ParsedMetricFamily> families;
  std::string schema;
  std::string tool;

  cur.expect('{');
  bool first_key = true;
  while (true) {
    if (cur.consume('}')) break;
    if (!first_key) cur.expect(',');
    first_key = false;
    const std::string key = cur.string();
    cur.expect(':');
    if (key == "schema") {
      schema = cur.string();
    } else if (key == "tool") {
      tool = cur.string();
    } else if (key == "metrics") {
      cur.expect('[');
      if (!cur.consume(']')) {
        do {
          ParsedMetricFamily fam;
          cur.expect('{');
          bool first_fkey = true;
          while (!cur.consume('}')) {
            if (!first_fkey) cur.expect(',');
            first_fkey = false;
            const std::string fkey = cur.string();
            cur.expect(':');
            if (fkey == "name") {
              fam.name = cur.string();
            } else if (fkey == "type") {
              fam.type = cur.string();
            } else if (fkey == "help") {
              fam.help = cur.string();
            } else if (fkey == "label_key") {
              fam.label_key = cur.string();
            } else if (fkey == "values") {
              cur.expect('[');
              if (!cur.consume(']')) {
                do {
                  ParsedMetricCell cell;
                  cur.expect('{');
                  bool first_ckey = true;
                  while (!cur.consume('}')) {
                    if (!first_ckey) cur.expect(',');
                    first_ckey = false;
                    const std::string ckey = cur.string();
                    cur.expect(':');
                    if (ckey == "label")
                      cell.label = cur.string();
                    else
                      cell.fields.emplace_back(ckey, cur.number());
                  }
                  fam.cells.push_back(std::move(cell));
                } while (cur.consume(','));
                cur.expect(']');
              }
            } else {
              AQT_REQUIRE(false,
                          "metrics JSON: unknown family key '" << fkey << "'");
            }
          }
          families.push_back(std::move(fam));
        } while (cur.consume(','));
        cur.expect(']');
      }
    } else {
      AQT_REQUIRE(false, "metrics JSON: unknown top-level key '" << key << "'");
    }
  }
  AQT_REQUIRE(schema == "aqt-metrics/1",
              "metrics JSON: schema '" << schema
                                       << "' is not aqt-metrics/1");
  return families;
}

namespace {

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string svg_sparkline(const std::vector<double>& values, int width,
                          int height) {
  AQT_REQUIRE(width >= 16 && height >= 8, "sparkline box too small");
  std::ostringstream os;
  os << "<svg class=\"spark\" width=\"" << width << "\" height=\"" << height
     << "\" viewBox=\"0 0 " << width << ' ' << height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">";
  if (!values.empty()) {
    double lo = values.front();
    double hi = values.front();
    for (const double v : values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi - lo;
    const double pad = 2.0;
    const double w = width - 2 * pad;
    const double h = height - 2 * pad;
    os << "<polyline fill=\"none\" stroke=\"#1565c0\" stroke-width=\"1.5\" "
          "points=\"";
    const std::size_t n = values.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double x =
          pad + (n > 1 ? w * static_cast<double>(i) /
                             static_cast<double>(n - 1)
                       : w / 2);
      const double frac = span > 0.0 ? (values[i] - lo) / span : 0.5;
      const double y = pad + h * (1.0 - frac);
      if (i != 0) os << ' ';
      os << fmt(x) << ',' << fmt(y);
    }
    os << "\"/>";
  }
  os << "</svg>";
  return os.str();
}

std::string render_html_report(const ParsedTimeseries& timeseries,
                               const std::vector<ParsedMetricFamily>& metrics,
                               const ReportOptions& options) {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
     << "<meta charset=\"utf-8\">\n<title>" << html_escape(options.title)
     << "</title>\n<style>\n"
     << "body{font:14px/1.5 system-ui,sans-serif;margin:2em;color:#222}\n"
     << "h1{font-size:1.4em}h2{font-size:1.1em;margin-top:2em}\n"
     << "table{border-collapse:collapse}\n"
     << "td,th{border:1px solid #ccc;padding:.3em .6em;text-align:right}\n"
     << "th{background:#f2f2f2}td.name,th.name{text-align:left;"
     << "font-family:monospace}\n"
     << ".spark{vertical-align:middle;background:#fafafa;"
     << "border:1px solid #eee}\n"
     << "pre{background:#f7f7f7;padding:1em;overflow-x:auto}\n"
     << "</style>\n</head>\n<body>\n<h1>" << html_escape(options.title)
     << "</h1>\n";

  if (timeseries.rows() > 0) {
    os << "<h2>Time series (" << timeseries.rows() << " rows)</h2>\n"
       << "<table>\n<tr><th class=\"name\">column</th><th>min</th>"
       << "<th>max</th><th>last</th><th>trend</th></tr>\n";
    for (std::size_t c = 0; c < timeseries.columns.size(); ++c) {
      const std::vector<double>& v = timeseries.series[c];
      if (v.empty()) continue;
      const auto [lo_it, hi_it] = std::minmax_element(v.begin(), v.end());
      os << "<tr><td class=\"name\">" << html_escape(timeseries.columns[c])
         << "</td><td>" << fmt(*lo_it) << "</td><td>" << fmt(*hi_it)
         << "</td><td>" << fmt(v.back()) << "</td><td>" << svg_sparkline(v)
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }

  if (!metrics.empty()) {
    os << "<h2>Metrics snapshot</h2>\n"
       << "<table>\n<tr><th class=\"name\">metric</th><th>label</th>"
       << "<th>field</th><th>value</th></tr>\n";
    for (const ParsedMetricFamily& fam : metrics) {
      for (const ParsedMetricCell& cell : fam.cells) {
        for (const auto& [field, value] : cell.fields) {
          os << "<tr><td class=\"name\" title=\"" << html_escape(fam.help)
             << "\">" << html_escape(fam.name) << "</td><td>";
          if (!fam.label_key.empty())
            os << html_escape(fam.label_key) << "="
               << html_escape(cell.label);
          os << "</td><td>" << html_escape(field) << "</td><td>" << fmt(value)
             << "</td></tr>\n";
        }
      }
    }
    os << "</table>\n";
  }

  if (!options.notes.empty())
    os << "<h2>Notes</h2>\n<pre>" << html_escape(options.notes)
       << "</pre>\n";

  os << "</body>\n</html>\n";
  return os.str();
}

}  // namespace aqt::obs
