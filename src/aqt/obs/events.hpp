// Structured JSONL event stream for packet lifecycle and run milestones.
//
// JsonlEventWriter implements the PacketEventSink interface of
// core/obs_sink.hpp (the same borrowed-sink pattern as trace_sink.hpp) and
// writes one self-contained JSON object per line: inject -> per-hop send ->
// absorb for every packet, plus tool-issued milestones (run-begin,
// drain-begin, run-end, ...).  Edges are written by *name* so the stream is
// portable without the originating graph, and packets by creation ordinal —
// the same identities run traces use.  Unlike the run trace, this stream is
// a human/pipeline-friendly observability feed, not verifier evidence: it
// carries derived fields (hop index, residence, latency) and is not
// content-hashed.
//
// Line grammar (one JSON object per '\n'-terminated line; key order fixed):
//
//   {"ev":"inject","t":0,"packet":0,"tag":7,"initial":true,"route":["a","b"]}
//   {"ev":"send","t":1,"packet":0,"edge":"a","hop":0,"residence":1}
//   {"ev":"absorb","t":2,"packet":0,"latency":2}
//   {"ev":"milestone","t":0,"name":"run-begin"}
//
// parse_jsonl_events is the matching hardened reader: malformed input is
// rejected with a PreconditionError naming the line — never a crash — so
// the stream round-trips (tests/obs) and can be consumed by untrusting
// pipelines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/core/obs_sink.hpp"
#include "aqt/core/types.hpp"

namespace aqt::obs {

/// One parsed event line.  Only the fields of the matching kind are
/// meaningful (e.g. `route` for kInject, `edge`/`hop`/`residence` for
/// kSend).
struct ObsEvent {
  enum class Kind : std::uint8_t { kInject, kSend, kAbsorb, kMilestone };

  Kind kind = Kind::kMilestone;
  Time t = 0;
  std::uint64_t packet = 0;  ///< Creation ordinal.
  std::uint64_t tag = 0;
  bool initial = false;
  std::vector<std::string> route;  ///< Edge names (inject).
  std::string edge;                ///< Edge name (send).
  std::uint64_t hop = 0;
  Time residence = 0;
  Time latency = 0;
  std::string name;  ///< Milestone name.
};

class JsonlEventWriter final : public PacketEventSink {
 public:
  /// Borrows the stream and the graph (for edge names); both must outlive
  /// the writer.
  JsonlEventWriter(std::ostream& os, const Graph& graph);

  void on_inject(Time t, std::uint64_t ordinal, std::uint64_t tag,
                 RouteSpan route, bool initial) override;
  void on_send(Time t, EdgeId e, std::uint64_t ordinal, std::size_t hop,
               Time residence) override;
  void on_absorb(Time t, std::uint64_t ordinal, Time latency) override;

  /// Tool-issued engine milestone ("run-begin", "drain-begin", "run-end").
  void milestone(Time t, const std::string& name);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  const Graph& graph_;
  std::uint64_t lines_ = 0;
};

/// Parses a JSONL event stream.  Throws PreconditionError (with `name` and
/// the offending line number) on malformed input; never aborts.
std::vector<ObsEvent> parse_jsonl_events(std::istream& is,
                                         const std::string& name);

}  // namespace aqt::obs
