// TimeseriesRecorder: deterministic, bounded-memory per-step time series.
//
// The engine's point-in-time metrics (registry/snapshot) answer "how did
// the run end"; this recorder answers "what happened along the way" — the
// queue-depth-versus-time evidence the bounded-buffer experiments
// (PAPERS.md: Miller & Patt-Shamir arXiv:1707.03856, Miller/Patt-Shamir/
// Rosenbaum arXiv:1902.08069) and the online stability watchdog need.
//
// It plugs into EngineSinks::samples (the StepSampleSink interface of
// core/obs_sink.hpp) and records, per sampled step: time, in-flight
// packets, cumulative injections/absorptions, active edge count, the
// step's largest buffer, the queue depth of every *watched* edge, and the
// wall nanoseconds elapsed since the previous sampled row.
//
// Memory is bounded by construction: rows are recorded every `stride`
// steps into a flat buffer of at most `capacity` rows; when the buffer
// fills, every other row is dropped and the stride doubles (classic
// adaptive downsampling).  Which rows survive is a pure function of the
// step sequence — never of timing — so two identical runs always keep
// identical row sets, and the deterministic columns are byte-identical
// across runs and --jobs settings (tests/obs pins this).  The single
// wall-clock column is the one intentional exception: clock reads are
// confined to sampled rows (the stride points), and `record_wall=false`
// removes them entirely for golden comparisons.
//
// Like every EngineSinks member the recorder is a pure observer — it never
// reads anything but the StepSample and the watched buffers' sizes, so
// attaching it cannot change a run (trace-hash byte identity, enforced by
// the aqt-fuzz observer-effect phase and tests/obs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/obs_sink.hpp"
#include "aqt/obs/profiler.hpp"

namespace aqt {
class Graph;
}

namespace aqt::obs {

struct TimeseriesConfig {
  /// Record every stride-th step (t % stride == 0).  Must be >= 1.
  Time stride = 1;

  /// Maximum retained rows; on overflow every other row is dropped and the
  /// stride doubles.  Must be >= 4.
  std::size_t capacity = 4096;

  /// Edges whose individual queue depth is recorded per row.
  std::vector<EdgeId> watched;

  /// Record wall nanoseconds since the previous sampled row.  Off, the
  /// recorder never reads a clock and its output is fully deterministic.
  bool record_wall = true;
};

class TimeseriesRecorder final : public StepSampleSink {
 public:
  /// `graph`, when given, provides edge names for the watched-edge export
  /// columns; it must outlive the recorder.  Without it columns are named
  /// "edge_<id>".  Throws PreconditionError on an invalid config.
  explicit TimeseriesRecorder(TimeseriesConfig config,
                              const Graph* graph = nullptr);

  void on_step(const StepSample& sample, const Engine& engine) override;

  struct Row {
    Time t = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t injected = 0;   ///< Cumulative.
    std::uint64_t absorbed = 0;   ///< Cumulative.
    std::uint64_t active_edges = 0;
    std::uint64_t max_queue = 0;
    std::uint64_t wall_nanos = 0; ///< Since previous sampled row; 0 first.
  };

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  /// Watched queue depths of row `i`, in config order.
  [[nodiscard]] std::vector<std::uint64_t> watched_depths(
      std::size_t i) const;
  /// The stride currently in effect (doubles on each compaction).
  [[nodiscard]] Time effective_stride() const { return stride_; }
  /// Steps seen (recorded or not) — exact, unlike rows().size().
  [[nodiscard]] std::uint64_t steps_seen() const { return steps_seen_; }
  /// Compactions performed (stride doublings).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  /// Column headers in export order: the fixed row columns, then one
  /// "edge_<name>" per watched edge.
  [[nodiscard]] std::vector<std::string> headers() const;

  /// Long-format CSV: one line per row, headers() first.
  [[nodiscard]] std::string to_csv() const;

  /// JSONL: one self-contained object per row
  ///   {"t":..,"in_flight":..,...,"edges":{"<name>":depth,...}}
  [[nodiscard]] std::string to_jsonl() const;

 private:
  TimeseriesConfig config_;
  const Graph* graph_;
  TickClock clock_;
  Time stride_;
  std::vector<Row> rows_;
  std::vector<std::uint64_t> depths_;  ///< rows x watched, flat.
  std::uint64_t steps_seen_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t last_wall_ticks_ = 0;
  bool have_last_wall_ = false;
};

/// Fans one StepSample stream out to several sinks (e.g. a recorder and a
/// watchdog on the same run), in add() order.  Borrows the sinks.
class StepSampleFanout final : public StepSampleSink {
 public:
  StepSampleFanout& add(StepSampleSink* sink);

  void on_step(const StepSample& sample, const Engine& engine) override;

  /// Null when empty, the single sink when size 1, self otherwise — so
  /// callers can always assign the result to EngineSinks::samples without
  /// paying a fan-out hop for the common one-sink case.
  [[nodiscard]] StepSampleSink* as_sink();

 private:
  std::vector<StepSampleSink*> sinks_;
};

}  // namespace aqt::obs
