// Self-contained HTML run reports (the aqt-report library).
//
// Folds the two observability artifacts every tool can already emit — a
// TimeseriesRecorder CSV (timeseries.hpp) and an aqt-metrics/1 JSON
// snapshot (export.hpp to_json) — into one static HTML file with inline
// SVG sparklines per time-series column and a metrics table.  No external
// assets, no scripts: the file opens anywhere, attaches to CI artifacts,
// and diffs cleanly because rendering is a pure function of its inputs.
//
// The parsers here accept exactly what this repo's exporters produce (the
// CSV header contract of TimeseriesRecorder::to_csv and the aqt-metrics/1
// schema) plus insignificant whitespace; they are readers for our own
// formats, not general CSV/JSON libraries.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace aqt::obs {

/// A parsed timeseries CSV, column-major: columns[i] names series[i].
struct ParsedTimeseries {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> series;

  [[nodiscard]] std::size_t rows() const {
    return series.empty() ? 0 : series.front().size();
  }
  /// The values of the column named `name`; empty when absent.
  [[nodiscard]] const std::vector<double>* find(const std::string& name) const;
};

/// Parses a TimeseriesRecorder::to_csv export (first line is the header;
/// every field numeric).  Throws PreconditionError on a malformed or
/// ragged table.
ParsedTimeseries parse_timeseries_csv(const std::string& text);

/// One cell of a parsed metric family: scalar metrics carry a single
/// ("value", x) field; histograms carry count/sum/min/max/mean/p50/p90/p99.
struct ParsedMetricCell {
  std::string label;
  std::vector<std::pair<std::string, double>> fields;
};

struct ParsedMetricFamily {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram".
  std::string help;
  std::string label_key;
  std::vector<ParsedMetricCell> cells;
};

/// Parses an aqt-metrics/1 JSON snapshot (export.hpp to_json).  Throws
/// PreconditionError on malformed input or a different schema tag.
std::vector<ParsedMetricFamily> parse_metrics_json(const std::string& text);

/// An inline `<svg>` sparkline of `values` (min..max normalized into the
/// box; a flat series renders as a centered line).  Pure and deterministic.
std::string svg_sparkline(const std::vector<double>& values, int width = 260,
                          int height = 48);

struct ReportOptions {
  std::string title = "aqt run report";
  /// Optional preformatted text block (e.g. a watchdog summary) rendered
  /// verbatim in a <pre> section.
  std::string notes;
};

/// Renders the full self-contained HTML document.  Either input may be
/// empty (its section is omitted).
std::string render_html_report(const ParsedTimeseries& timeseries,
                               const std::vector<ParsedMetricFamily>& metrics,
                               const ReportOptions& options = {});

}  // namespace aqt::obs
