#include "aqt/obs/registry.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt::obs {
namespace {

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  const auto is_lower = [](char c) { return c >= 'a' && c <= 'z'; };
  const auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  if (!is_lower(name.front()) && name.front() != '_') return false;
  for (const char c : name)
    if (!is_lower(c) && !is_digit(c) && c != '_') return false;
  return true;
}

}  // namespace

void Counter::set(std::uint64_t value) {
  AQT_REQUIRE(value >= value_, "counter moved backwards: " << value_ << " -> "
                                                           << value);
  value_ = value;
}

const char* to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

MetricRegistry::Cell& MetricRegistry::cell(const std::string& name,
                                           const std::string& help,
                                           MetricType type,
                                           const std::string& label_key,
                                           const std::string& label) {
  AQT_REQUIRE(valid_metric_name(name),
              "invalid metric name '" << name << "' ([a-z_][a-z0-9_]*)");
  AQT_REQUIRE(label_key.empty() == label.empty(),
              "metric '" << name
                         << "': label_key and label must be given together");
  for (Family& fam : families_) {
    if (fam.name != name) continue;
    AQT_REQUIRE(fam.type == type, "metric '" << name << "' registered as "
                                             << to_string(fam.type)
                                             << ", requested as "
                                             << to_string(type));
    AQT_REQUIRE(fam.label_key == label_key,
                "metric '" << name << "' label key mismatch: '"
                           << fam.label_key << "' vs '" << label_key << "'");
    for (Cell& c : fam.cells)
      if (c.label == label) return c;
    fam.cells.emplace_back();
    fam.cells.back().label = label;
    return fam.cells.back();
  }
  families_.emplace_back();
  Family& fam = families_.back();
  fam.name = name;
  fam.help = help;
  fam.label_key = label_key;
  fam.type = type;
  fam.cells.emplace_back();
  fam.cells.back().label = label;
  return fam.cells.back();
}

Counter& MetricRegistry::counter(const std::string& name,
                                 const std::string& help,
                                 const std::string& label_key,
                                 const std::string& label) {
  return cell(name, help, MetricType::kCounter, label_key, label).counter;
}

Gauge& MetricRegistry::gauge(const std::string& name, const std::string& help,
                             const std::string& label_key,
                             const std::string& label) {
  return cell(name, help, MetricType::kGauge, label_key, label).gauge;
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     const std::string& help,
                                     const std::string& label_key,
                                     const std::string& label) {
  return cell(name, help, MetricType::kHistogram, label_key, label).histogram;
}

void MetricRegistry::merge_from(const MetricRegistry& other) {
  for (const Family& fam : other.families_) {
    for (const Cell& src : fam.cells) {
      Cell& dst = cell(fam.name, fam.help, fam.type, fam.label_key, src.label);
      switch (fam.type) {
        case MetricType::kCounter:
          dst.counter.inc(src.counter.value());
          break;
        case MetricType::kGauge:
          dst.gauge.set(std::max(dst.gauge.value(), src.gauge.value()));
          break;
        case MetricType::kHistogram:
          dst.histogram.merge(src.histogram);
          break;
      }
    }
  }
}

const MetricRegistry::Family* MetricRegistry::find(
    const std::string& name) const {
  for (const Family& fam : families_)
    if (fam.name == name) return &fam;
  return nullptr;
}

}  // namespace aqt::obs
