#include "aqt/obs/timeseries.hpp"

#include <sstream>

#include "aqt/core/engine.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/util/check.hpp"

namespace aqt::obs {

TimeseriesRecorder::TimeseriesRecorder(TimeseriesConfig config,
                                       const Graph* graph)
    : config_(std::move(config)), graph_(graph), stride_(config_.stride) {
  AQT_REQUIRE(config_.stride >= 1, "timeseries stride must be >= 1");
  AQT_REQUIRE(config_.capacity >= 4,
              "timeseries capacity must be >= 4 (got " << config_.capacity
                                                       << ")");
  if (graph_ != nullptr)
    for (const EdgeId e : config_.watched)
      AQT_REQUIRE(e < graph_->edge_count(),
                  "watched edge id out of range: " << e);
  rows_.reserve(config_.capacity);
  depths_.reserve(config_.capacity * config_.watched.size());
}

void TimeseriesRecorder::on_step(const StepSample& sample,
                                 const Engine& engine) {
  ++steps_seen_;
  if (sample.t % stride_ != 0) return;

  Row row;
  row.t = sample.t;
  row.in_flight = sample.in_flight;
  row.injected = sample.injected_total;
  row.absorbed = sample.absorbed_total;
  row.active_edges = sample.active_edges;
  row.max_queue = sample.max_queue;
  if (config_.record_wall) {
    const std::uint64_t ticks = clock_.ticks();
    if (have_last_wall_ && ticks > last_wall_ticks_)
      row.wall_nanos = clock_.to_nanos(ticks - last_wall_ticks_);
    last_wall_ticks_ = ticks;
    have_last_wall_ = true;
  }
  rows_.push_back(row);
  for (const EdgeId e : config_.watched)
    depths_.push_back(static_cast<std::uint64_t>(engine.queue_size(e)));

  if (rows_.size() < config_.capacity) return;

  // Overflow: keep every other row (the ones landing on the doubled
  // stride) and double the stride.  Row survival is a pure function of
  // step numbers, so identical runs compact identically.
  stride_ *= 2;
  ++compactions_;
  const std::size_t watched = config_.watched.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].t % stride_ != 0) continue;
    if (kept != i) {
      // Surviving rows fold the wall time of the dropped row between them,
      // so the wall column still sums to total elapsed time.
      rows_[kept] = rows_[i];
      rows_[kept].wall_nanos =
          rows_[i].wall_nanos +
          (i > 0 && rows_[i - 1].t % stride_ != 0 ? rows_[i - 1].wall_nanos
                                                  : 0);
      for (std::size_t w = 0; w < watched; ++w)
        depths_[kept * watched + w] = depths_[i * watched + w];
    }
    ++kept;
  }
  rows_.resize(kept);
  depths_.resize(kept * watched);
}

std::vector<std::uint64_t> TimeseriesRecorder::watched_depths(
    std::size_t i) const {
  AQT_REQUIRE(i < rows_.size(), "timeseries row out of range: " << i);
  const std::size_t watched = config_.watched.size();
  return {depths_.begin() + static_cast<std::ptrdiff_t>(i * watched),
          depths_.begin() + static_cast<std::ptrdiff_t>((i + 1) * watched)};
}

namespace {

std::string edge_label(const Graph* graph, EdgeId e) {
  if (graph != nullptr) return graph->edge(e).name;
  return "edge_" + std::to_string(e);
}

}  // namespace

std::vector<std::string> TimeseriesRecorder::headers() const {
  std::vector<std::string> out = {"t",       "in_flight",    "injected",
                                  "absorbed", "active_edges", "max_queue",
                                  "wall_nanos"};
  for (const EdgeId e : config_.watched)
    out.push_back("edge_" + edge_label(graph_, e));
  return out;
}

std::string TimeseriesRecorder::to_csv() const {
  std::ostringstream os;
  const std::vector<std::string> head = headers();
  for (std::size_t i = 0; i < head.size(); ++i)
    os << (i == 0 ? "" : ",") << head[i];
  os << '\n';
  const std::size_t watched = config_.watched.size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << r.t << ',' << r.in_flight << ',' << r.injected << ','
       << r.absorbed << ',' << r.active_edges << ',' << r.max_queue << ','
       << r.wall_nanos;
    for (std::size_t w = 0; w < watched; ++w)
      os << ',' << depths_[i * watched + w];
    os << '\n';
  }
  return os.str();
}

std::string TimeseriesRecorder::to_jsonl() const {
  std::ostringstream os;
  const std::size_t watched = config_.watched.size();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    os << "{\"t\":" << r.t << ",\"in_flight\":" << r.in_flight
       << ",\"injected\":" << r.injected << ",\"absorbed\":" << r.absorbed
       << ",\"active_edges\":" << r.active_edges
       << ",\"max_queue\":" << r.max_queue
       << ",\"wall_nanos\":" << r.wall_nanos;
    if (watched > 0) {
      os << ",\"edges\":{";
      for (std::size_t w = 0; w < watched; ++w)
        os << (w == 0 ? "" : ",") << '"'
           << edge_label(graph_, config_.watched[w])
           << "\":" << depths_[i * watched + w];
      os << '}';
    }
    os << "}\n";
  }
  return os.str();
}

StepSampleFanout& StepSampleFanout::add(StepSampleSink* sink) {
  if (sink != nullptr) sinks_.push_back(sink);
  return *this;
}

void StepSampleFanout::on_step(const StepSample& sample,
                               const Engine& engine) {
  for (StepSampleSink* sink : sinks_) sink->on_step(sample, engine);
}

StepSampleSink* StepSampleFanout::as_sink() {
  if (sinks_.empty()) return nullptr;
  if (sinks_.size() == 1) return sinks_.front();
  return this;
}

}  // namespace aqt::obs
