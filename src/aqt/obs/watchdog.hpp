// StabilityWatchdog: online growth detection while a run executes.
//
// The offline Theorem 3.17 machinery (verify/certificate.hpp) can witness
// instability only after a trace is written; this watchdog answers the
// same question *live*.  It plugs into EngineSinks::samples, keeps a
// bounded *whole-run* history of (t, in_flight) samples (adaptive
// downsampling: when the buffer fills, every other sample is dropped and
// the stride doubles — the Theorem 3.17 constructions grow the backlog in
// iteration-length phases, so a short sliding window would see only the
// locally-flat plateau and miss the run-scale trend), and every
// `check_every` steps fits the retained history two ways:
//
//   * a least-squares slope of total backlog versus time (packets/step) —
//     a (w, r) adversary with r below the stability threshold keeps the
//     expected slope at 0, while the Theorem 3.17 constructions force it
//     positive;
//   * the late/early window ratio of core/stability.hpp's classifier, so
//     online verdicts agree with the offline growth witness by sharing
//     its decision rule.
//
// A check raises kGrowthSuspected only when BOTH signals fire (ratio >=
// ratio_slack and the fitted slope is positive enough to double the
// backlog within `doubling_horizon` windows) — a queue that is merely
// large but flat stays kStable.  The overall verdict latches: once
// growth is suspected it stays suspected (first_flag_step records when),
// matching the theory — an unstable system does not become stable again.
//
// The watchdog is deterministic (pure function of the sample stream; no
// clock reads) and write-only, so attaching it preserves trace-hash byte
// identity (tests/obs, aqt-fuzz --obs-trials).  analyze_series() exposes
// the identical decision rule for offline series — aqt-verify uses it to
// cross-check online verdicts against Theorem 3.17 certificates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/obs_sink.hpp"

namespace aqt::obs {

class MetricRegistry;

enum class WatchdogVerdict : std::uint8_t {
  kUndecided = 0,       ///< Too little data to call.
  kStable = 1,          ///< Backlog flat or shrinking over the window.
  kGrowthSuspected = 2  ///< Linear (or faster) backlog growth detected.
};

const char* to_string(WatchdogVerdict v);

struct WatchdogConfig {
  /// Fit cadence in steps.  Must be >= 2.
  Time check_every = 512;

  /// Retained-history capacity in samples.  The samples always span the
  /// whole run: on overflow every other one is dropped and the sampling
  /// stride doubles.  Must be >= 8.
  std::size_t window = 64;

  /// Late/early mean ratio at or above which the window counts as
  /// growing (the classify_growth slack).
  double ratio_slack = 2.0;

  /// The fitted slope must be large enough to double the window's mean
  /// backlog within this many window-spans; filters slopes that are
  /// positive only through noise on a flat queue.
  double doubling_horizon = 8.0;

  /// The late-third mean backlog must reach this many packets before
  /// growth can be called: a handful of in-flight packets doubling to two
  /// handfuls is stochastic noise, not a Theorem 3.17 witness.
  double min_backlog = 16.0;

  /// Checks before the first verdict can be non-undecided.
  std::size_t min_samples = 16;
};

/// One fit outcome (per check and final).
struct WatchdogCheck {
  Time at = 0;                 ///< Step the check ran at.
  WatchdogVerdict verdict = WatchdogVerdict::kUndecided;
  double slope = 0.0;          ///< Packets per step, least squares.
  double ratio = 0.0;          ///< Late/early window mean ratio.
  double mean = 0.0;           ///< Window mean backlog.
};

/// Offline twin of the online rule: fits `samples` (one backlog value per
/// uniform time unit, e.g. VerifyReport::occupancy) with the same
/// two-signal test.  `config.window`/`min_samples` bound the fit; the
/// whole series is the window.
WatchdogCheck analyze_series(const std::vector<std::uint64_t>& samples,
                             const WatchdogConfig& config = {});

class StabilityWatchdog final : public StepSampleSink {
 public:
  explicit StabilityWatchdog(WatchdogConfig config = {});

  void on_step(const StepSample& sample, const Engine& engine) override;

  /// The latched overall verdict (kGrowthSuspected sticks).
  [[nodiscard]] WatchdogVerdict verdict() const { return verdict_; }
  /// Step of the first growth flag; 0 while never flagged.
  [[nodiscard]] Time first_flag_step() const { return first_flag_; }
  /// Most recent check (default-constructed before the first one).
  [[nodiscard]] const WatchdogCheck& last_check() const { return last_; }
  [[nodiscard]] std::uint64_t checks_run() const { return checks_; }
  /// Every check outcome, oldest first (bounded: grows one entry per
  /// check_every steps).
  [[nodiscard]] const std::vector<WatchdogCheck>& history() const {
    return history_;
  }

  /// One line per state change, e.g.
  /// "watchdog @step 4096: growth-suspected (slope 1.23 pkts/step, ...)".
  [[nodiscard]] std::string summary() const;

  /// Registers the aqt_watchdog_* families:
  ///   aqt_watchdog_checks_total, aqt_watchdog_flag (0/1 gauge),
  ///   aqt_watchdog_first_flag_step, aqt_watchdog_slope_packets_per_step,
  ///   aqt_watchdog_window_ratio, aqt_watchdog_window_mean_packets.
  void collect_metrics(MetricRegistry& registry) const;

 private:
  void run_check(Time at);
  void compact();

  WatchdogConfig config_;
  Time sample_stride_ = 1;  ///< Doubles on each history compaction.
  std::vector<Time> times_;
  std::vector<std::uint64_t> backlog_;
  WatchdogVerdict verdict_ = WatchdogVerdict::kUndecided;
  WatchdogCheck last_;
  std::vector<WatchdogCheck> history_;
  Time first_flag_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace aqt::obs
