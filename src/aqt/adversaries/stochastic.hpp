// Stochastic and deterministic (w, r) traffic generators (Definition 2.1).
//
// The stability theorems of §4 hold against *every* (w, r) adversary, so the
// experiment suite corroborates them with the most aggressive generators we
// can build.  Feasibility is enforced by construction — an injection is
// issued only if every edge of its route has spare budget in the trailing
// w-step window — and re-verified post-hoc by check_window().
//
// Modes:
//  * uniform  — random simple routes anywhere in the graph;
//  * hotspot  — every route is forced through one contended edge, the
//               single-bottleneck worst case;
//  * convoy   — deterministic: saturates one fixed long path with maximal
//               bursts at window-aligned steps (the classic pile-up
//               pattern).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/util/rational.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {

struct StochasticConfig {
  std::int64_t w = 1;           ///< Window size.
  Rat r;                        ///< Rate; per-edge budget is floor(w*r).
  std::int64_t max_route_len = 1;  ///< The d parameter (route length cap).
  std::uint64_t seed = 1;
  /// Injection attempts per step; higher = closer to saturating the budget.
  std::int64_t attempts_per_step = 4;
  enum class Mode { kUniform, kHotspot } mode = Mode::kUniform;
};

/// Random maximal-ish (w, r) traffic, feasible by construction.
class StochasticAdversary final : public Adversary {
 public:
  StochasticAdversary(const Graph& graph, StochasticConfig config);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;

  /// Output depends only on the RNG stream and internal window state.
  [[nodiscard]] bool is_oblivious() const override { return true; }

  /// Longest route actually injected so far (<= max_route_len).
  [[nodiscard]] std::int64_t longest_route() const { return longest_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }

 private:
  [[nodiscard]] Route random_route();
  [[nodiscard]] bool fits_budget(const Route& route, Time now) const;
  void charge(const Route& route, Time now);

  const Graph& graph_;
  StochasticConfig config_;
  Rng rng_;
  std::int64_t budget_;
  EdgeId hotspot_ = kNoEdge;
  std::vector<std::deque<Time>> recent_;  ///< Per-edge uses in last window.
  std::int64_t longest_ = 0;
  std::uint64_t injected_ = 0;
};

/// Deterministic worst-case (w, r) pattern: at the first floor(w*r) steps of
/// every aligned window, inject one packet along a fixed path (all packets
/// share all edges — the maximal legal pile-up on that path).
class ConvoyAdversary final : public Adversary {
 public:
  /// `path` must be a simple path; every packet takes the whole path.
  ConvoyAdversary(Route path, std::int64_t w, Rat r);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;

  /// Deterministic function of `now` alone.
  [[nodiscard]] bool is_oblivious() const override { return true; }

 private:
  Route path_;
  std::int64_t w_;
  std::int64_t burst_;  ///< floor(w*r).
};

}  // namespace aqt
