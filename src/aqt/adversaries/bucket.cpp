#include "aqt/adversaries/bucket.hpp"

#include <algorithm>
#include <limits>

#include "aqt/util/check.hpp"

namespace aqt {

TokenBucket::TokenBucket(std::int64_t burst, const Rat& rate)
    : burst_(burst), rate_(rate), tokens_(burst) {
  AQT_REQUIRE(burst >= 1, "bucket burst must be >= 1");
  AQT_REQUIRE(rate.num() > 0, "bucket rate must be positive");
}

void TokenBucket::advance(Time t) {
  AQT_REQUIRE(t >= clock_, "token bucket moved backwards");
  if (t == clock_) return;
  tokens_ = tokens_ + rate_ * Rat(t - clock_);
  if (tokens_ > Rat(burst_)) tokens_ = Rat(burst_);
  clock_ = t;
}

bool TokenBucket::can_spend(Time t) {
  advance(t);
  return tokens_ >= Rat(1);
}

void TokenBucket::spend(Time t) {
  advance(t);
  AQT_REQUIRE(tokens_ >= Rat(1), "spending an empty bucket");
  tokens_ -= Rat(1);
}

std::int64_t TokenBucket::tokens(Time t) {
  advance(t);
  return tokens_.floor();
}

RateCheckResult check_bucket(const RateAudit& audit, std::int64_t burst,
                             const Rat& r) {
  AQT_REQUIRE(burst >= 0, "negative burst");
  const std::int64_t p = r.num();
  const std::int64_t q = r.den();
  AQT_REQUIRE(p > 0, "bucket check needs a positive rate");

  for (EdgeId e = 0; e < audit.edge_count(); ++e) {
    std::vector<Time> t = audit.times(e);
    if (t.empty()) continue;
    std::sort(t.begin(), t.end());

    // With u_x = q*x - p*t_x, the interval [t_i, t_j] violates
    // "count <= floor(b + r*length)" iff u_j - u_i > q*b - q + p.
    const std::int64_t threshold = q * burst - q + p;
    std::int64_t best_u = std::numeric_limits<std::int64_t>::max();
    std::size_t best_i = 0;
    for (std::size_t x = 0; x < t.size(); ++x) {
      const std::int64_t u = q * static_cast<std::int64_t>(x + 1) - p * t[x];
      if (u < best_u) {
        best_u = u;
        best_i = x;
      }
      // i == x is a legal witness here (a single packet can violate b=0,
      // though we require b >= 1 in generators).
      if (u - best_u > threshold) {
        RateCheckResult res;
        res.ok = false;
        res.edge = e;
        res.t1 = t[best_i];
        res.t2 = t[x];
        res.count = static_cast<std::int64_t>(x - best_i + 1);
        res.budget =
            (Rat(burst) + r * Rat(res.t2 - res.t1 + 1)).floor();
        AQT_CHECK(res.count > res.budget, "bucket witness inconsistent");
        return res;
      }
    }
  }
  return RateCheckResult{};
}

BucketAdversary::BucketAdversary(const Graph& graph, Config config)
    : graph_(graph), config_(config), rng_(config.seed) {
  AQT_REQUIRE(config_.max_route_len >= 1, "route length cap must be >= 1");
  buckets_.reserve(graph.edge_count());
  for (EdgeId e = 0; e < graph.edge_count(); ++e)
    buckets_.emplace_back(config_.burst, config_.rate);
}

Route BucketAdversary::random_route() {
  Route route;
  std::vector<bool> visited(graph_.node_count(), false);
  const EdgeId start = static_cast<EdgeId>(rng_.below(graph_.edge_count()));
  route.push_back(start);
  visited[graph_.tail(start)] = true;
  visited[graph_.head(start)] = true;
  const auto target_len =
      static_cast<std::size_t>(rng_.range(1, config_.max_route_len));
  while (route.size() < target_len) {
    const auto& outs = graph_.out_edges(graph_.head(route.back()));
    Route options;
    for (EdgeId e : outs)
      if (!visited[graph_.head(e)]) options.push_back(e);
    if (options.empty()) break;
    const EdgeId pick = options[rng_.below(options.size())];
    visited[graph_.head(pick)] = true;
    route.push_back(pick);
  }
  return route;
}

void BucketAdversary::step(Time now, const Engine&, AdversaryStep& out) {
  for (std::int64_t a = 0; a < config_.attempts_per_step; ++a) {
    Route route = random_route();
    bool ok = true;
    for (EdgeId e : route)
      if (!buckets_[e].can_spend(now)) {
        ok = false;
        break;
      }
    if (!ok) continue;
    for (EdgeId e : route) buckets_[e].spend(now);
    longest_ = std::max(longest_, static_cast<std::int64_t>(route.size()));
    ++injected_;
    out.injections.push_back(Injection{std::move(route), /*tag=*/0});
  }
}

}  // namespace aqt
