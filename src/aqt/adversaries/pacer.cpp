#include "aqt/adversaries/pacer.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {

RatePacer::RatePacer(Rat rate, Time start, std::int64_t total)
    : rate_(rate), start_(start), total_(total) {
  AQT_REQUIRE(rate.num() >= 0, "negative pacing rate");
}

std::int64_t RatePacer::due(Time t) {
  if (t < start_) return 0;
  if (exhausted()) return 0;
  std::int64_t quota = rate_.floor_mul(t - start_ + 1);
  if (total_ >= 0) quota = std::min(quota, total_);
  const std::int64_t out = quota - emitted_;
  AQT_CHECK(out >= 0, "pacer queried with decreasing time");
  emitted_ = quota;
  return out;
}

Time RatePacer::completion_time() const {
  AQT_REQUIRE(total_ >= 0, "completion_time of unbounded stream");
  AQT_REQUIRE(rate_.num() > 0, "completion_time needs rate > 0");
  if (total_ == 0) return start_;
  // Smallest k with floor(r*k) >= total  <=>  k >= total/r.
  const Rat k = Rat(total_) / rate_;
  return start_ + k.ceil() - 1;
}

}  // namespace aqt
