// The Lotker–Patt-Shamir–Rosén FIFO instability construction (paper §3).
//
// Four phase adversaries implement the paper's lemmas, each usable
// standalone (the unit tests exercise them against the lemma statements)
// and composed by LpsAdversary into the Theorem 3.17 outer loop:
//
//  * LpsBootstrap  (Lemma 3.15): 2S flat packets at the ingress of F(k)
//                  -> C(S', F(k)) with S' ~ 2S(1 - R_n) >= S(1 + eps).
//  * LpsHandoff    (Lemma 3.6):  C(S, F(k)) -> C(S', F(k+1)), F(k) empty.
//  * LpsDrain      (Lemma 3.13 closing step): no injections for S + n
//                  steps; the queue collects at the egress of F(k).
//  * LpsStitch     (Lemma 3.16): S old packets at the egress -> r^3 S
//                  *fresh* packets at the ingress of F(1), via the 3-edge
//                  path egress(M), e0, ingress(1).
//
// Every phase sizes itself lazily from the *measured* queue state at its
// first step — the operational version of the paper's "floors and ceilings
// ... can be compensated for by using a larger S0".  All streams are
// floor-paced (see pacer.hpp), which keeps the composed adversary exactly
// rate-r feasible; tests assert this with check_rate_r() over whole runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "aqt/adversaries/pacer.hpp"
#include "aqt/core/adversary.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/topology/gadget.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// Parameters of the construction.
struct LpsConfig {
  Rat r;              ///< Injection rate, 1/2 < r < 1 (r = 1/2 + eps).
  std::int64_t n = 0;   ///< F_n path length (from lps_params).
  std::int64_t s0 = 0;  ///< Minimum S for the guarantees (from lps_params).
  /// Enforce S >= s0 at phase starts (disable only in small unit tests).
  bool enforce_s0 = true;
  /// Ablation switch: drop the part-(2) single-edge decoy streams.  The
  /// construction then loses its amplification (see bench_a13_ablation);
  /// never set outside ablation studies.
  bool disable_decoys = false;

  [[nodiscard]] double eps() const { return r.to_double() - 0.5; }
};

/// Derives n and S0 from the rate via the proof of Lemma 3.6.
LpsConfig make_lps_config(const Rat& r);

// --- Initial-configuration helpers -----------------------------------------

/// Places `count` packets with the single-edge route {ingress of F(k)} —
/// the flat queue Lemma 3.15 starts from and Theorem 3.17's initial state.
void setup_flat_queue(Engine& engine, const ChainedGadgets& net,
                      std::size_t k, std::int64_t count);

/// Establishes C(S, F(k)) (Definition 3.5) as an initial configuration:
/// S packets across the e-buffers (every buffer nonempty, remaining routes
/// e_i..e_n, a') and S packets at the ingress with route a, f1..fn, a'.
/// Requires S >= n.
void setup_gadget_invariant(Engine& engine, const ChainedGadgets& net,
                            std::size_t k, std::int64_t S);

// --- Invariant inspection ---------------------------------------------------

/// Measured state of C(S, F(k)) (Definition 3.5).  The discrete
/// construction satisfies the invariant up to O(n) transients (short decoy
/// packets not yet absorbed, long packets mid-f-path), so the report counts
/// deviations instead of failing outright.
struct GadgetInvariantReport {
  std::int64_t e_total = 0;        ///< Packets across e-buffers (part 1).
  std::int64_t empty_e_buffers = 0;  ///< Part 2 wants 0.
  std::int64_t ingress_count = 0;  ///< Packets at the ingress (part 3).
  /// Buffered packets whose remaining route differs from what parts (2)/(3)
  /// prescribe (typically still-draining single-edge decoys); 0 in the
  /// idealized invariant.
  std::int64_t mismatched_routes = 0;
  /// Packets on the f-path (the paper's part 4 wants none; transiting
  /// long packets linger here for O(n) steps).
  std::int64_t stray_packets = 0;
  /// Packets in the egress buffer.  Note the egress edge is shared with the
  /// next gadget's ingress, so this is reported separately from strays.
  std::int64_t egress_count = 0;

  [[nodiscard]] bool routes_ok() const { return mismatched_routes == 0; }

  /// The S value the next phase would use.
  [[nodiscard]] std::int64_t S() const {
    return std::min(e_total, ingress_count);
  }
};

GadgetInvariantReport inspect_gadget(const Engine& engine,
                                     const ChainedGadgets& net,
                                     std::size_t k);

// --- Phase adversaries ------------------------------------------------------

/// Common machinery: phases initialize from the engine at their first
/// step() call, then replay paced streams until their end time.
class LpsPhase : public Adversary {
 public:
  void step(Time now, const Engine& engine, AdversaryStep& out) final;
  [[nodiscard]] bool finished(Time now) const final {
    return initialized_ && now > end_time_;
  }

  /// Valid after the first step.
  [[nodiscard]] Time end_time() const { return end_time_; }
  /// The measured S this phase sized itself with (after the first step).
  [[nodiscard]] std::int64_t measured_s() const { return s_; }

 protected:
  LpsPhase(const ChainedGadgets& net, LpsConfig cfg);

  /// Phase-specific setup at reference time tau = now - 1: measure S, emit
  /// reroutes, add streams, and return the end time.
  virtual Time initialize(Time tau, const Engine& engine,
                          AdversaryStep& out) = 0;

  /// Adds a paced stream (`total` packets with `route` at cfg.r from
  /// `start`); used by initialize().
  void add_stream(Route route, Time start, std::int64_t total);

  /// Extends every packet waiting in the buffer of `edge`: its remaining
  /// route is suffixed with `extension` (Lemma 3.3 rerouting).
  static void extend_buffer(const Engine& engine, EdgeId edge,
                            const Route& extension, AdversaryStep& out);

  const ChainedGadgets& net_;
  LpsConfig cfg_;
  std::int64_t s_ = 0;  ///< Set by initialize().

 private:
  struct Stream {
    Route route;
    RatePacer pacer;
  };
  std::vector<Stream> streams_;
  bool initialized_ = false;
  Time end_time_ = 0;
};

/// Lemma 3.15: flat queue at ingress of F(k) -> C(S', F(k)).
class LpsBootstrap final : public LpsPhase {
 public:
  LpsBootstrap(const ChainedGadgets& net, LpsConfig cfg, std::size_t k);

 protected:
  Time initialize(Time tau, const Engine& engine, AdversaryStep& out) override;

 private:
  std::size_t k_;
};

/// Lemma 3.6: C(S, F(k)) -> C(S', F(k+1)); requires k + 1 < M.
class LpsHandoff final : public LpsPhase {
 public:
  LpsHandoff(const ChainedGadgets& net, LpsConfig cfg, std::size_t k);

 protected:
  Time initialize(Time tau, const Engine& engine, AdversaryStep& out) override;

 private:
  std::size_t k_;
};

/// Lemma 3.13's closing step: S + n silent steps; the 2S packets of
/// C(S, F(k)) pile up at the egress of F(k) (>= S - n of them remain).
class LpsDrain final : public LpsPhase {
 public:
  LpsDrain(const ChainedGadgets& net, LpsConfig cfg, std::size_t k);

 protected:
  Time initialize(Time tau, const Engine& engine, AdversaryStep& out) override;

 private:
  std::size_t k_;
};

/// Lemma 3.16 on the 3-edge path egress(F(M)), e0, ingress(F(1)); leaves
/// ~ r^3 S fresh flat packets at the ingress.  Requires a closed chain.
class LpsStitch final : public LpsPhase {
 public:
  LpsStitch(const ChainedGadgets& net, LpsConfig cfg);

 protected:
  Time initialize(Time tau, const Engine& engine, AdversaryStep& out) override;
};

// --- The Theorem 3.17 loop --------------------------------------------------

/// Outcome of one outer iteration.
struct LpsIterationRecord {
  std::int64_t iteration = 0;
  Time t_start = 0;
  Time t_end = 0;
  std::int64_t s_start = 0;  ///< Flat packets at ingress(1) at loop start.
  std::int64_t s_end = 0;    ///< Flat packets at ingress(1) after stitch.
  /// S measured after the bootstrap and after each handoff (the (1+eps)
  /// cascade of Lemma 3.13).
  std::vector<std::int64_t> s_cascade;
};

/// The full instability adversary: bootstrap, M-1 handoffs, drain, stitch,
/// repeat.  Stops after `max_iterations` or if the queue collapses.
class LpsAdversary final : public Adversary {
 public:
  LpsAdversary(const ChainedGadgets& net, LpsConfig cfg,
               std::int64_t max_iterations);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time /*now*/) const override { return done_; }

  [[nodiscard]] const std::vector<LpsIterationRecord>& history() const {
    return history_;
  }

 private:
  enum class Stage { kBootstrap, kHandoff, kDrain, kStitch };

  void advance(Time now, const Engine& engine);

  const ChainedGadgets& net_;
  LpsConfig cfg_;
  std::int64_t max_iterations_;

  Stage stage_ = Stage::kBootstrap;
  std::size_t handoff_k_ = 0;
  std::unique_ptr<LpsPhase> current_;
  bool done_ = false;

  LpsIterationRecord record_;
  std::vector<LpsIterationRecord> history_;
};

}  // namespace aqt
