#include "aqt/adversaries/lps.hpp"

#include <algorithm>
#include <cmath>

#include "aqt/analysis/lps_math.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

/// Tags for forensic inspection of runs (visible in packet dumps).
enum LpsTag : std::uint64_t {
  kTagShort = 1,   ///< Single-edge decoys on the e'-path.
  kTagLong = 2,    ///< Part (3)/(4) long packets.
  kTagSingle = 3,  ///< Bootstrap's n single-edge packets on a.
  kTagStitch = 4,  ///< Lemma 3.16 packets.
};

/// floor(x) as int64 with a defensive clamp for tiny negatives from
/// floating-point slack.
std::int64_t ifloor(double x) {
  return static_cast<std::int64_t>(std::floor(std::max(x, 0.0)));
}

}  // namespace

LpsConfig make_lps_config(const Rat& r) {
  AQT_REQUIRE(r > Rat(1, 2) && r < Rat(1),
              "LPS construction needs 1/2 < r < 1, got " << r);
  const double eps = r.to_double() - 0.5;
  const LpsParams p = lps_params(eps);
  LpsConfig cfg;
  cfg.r = r;
  cfg.n = p.n;
  cfg.s0 = p.s0;
  return cfg;
}

void setup_flat_queue(Engine& engine, const ChainedGadgets& net,
                      std::size_t k, std::int64_t count) {
  AQT_REQUIRE(k < net.gadgets.size(), "gadget index out of range");
  const Route route = {net.gadgets[k].ingress};
  for (std::int64_t i = 0; i < count; ++i)
    engine.add_initial_packet(route, kTagLong);
}

void setup_gadget_invariant(Engine& engine, const ChainedGadgets& net,
                            std::size_t k, std::int64_t S) {
  AQT_REQUIRE(k < net.gadgets.size(), "gadget index out of range");
  AQT_REQUIRE(S >= net.n, "C(S, F) needs S >= n so every e-buffer is "
                          "nonempty; S=" << S << " n=" << net.n);
  // One packet in each of e_2..e_n, the remaining S-(n-1) in e_1; this is
  // the pipeline shape under which the e-chain feeds the egress one packet
  // per step for S consecutive steps (Claim 3.8).
  const auto n = static_cast<std::size_t>(net.n);
  for (std::size_t i = 2; i <= n; ++i)
    engine.add_initial_packet(net.e_route(k, i), kTagLong);
  const std::int64_t bulk = S - (net.n - 1);
  for (std::int64_t j = 0; j < bulk; ++j)
    engine.add_initial_packet(net.e_route(k, 1), kTagLong);
  for (std::int64_t j = 0; j < S; ++j)
    engine.add_initial_packet(net.f_route(k), kTagLong);
}

GadgetInvariantReport inspect_gadget(const Engine& engine,
                                     const ChainedGadgets& net,
                                     std::size_t k) {
  AQT_REQUIRE(k < net.gadgets.size(), "gadget index out of range");
  const GadgetEdges& ge = net.gadgets[k];
  GadgetInvariantReport rep;

  const auto remaining_of = [&](PacketId id) {
    const Packet& p = engine.packet(id);
    return Route(p.route.begin() + static_cast<std::ptrdiff_t>(p.hop),
                 p.route.end());
  };

  for (std::size_t i = 1; i <= ge.e_path.size(); ++i) {
    const Buffer& buf = engine.buffer(ge.e_path[i - 1]);
    if (buf.empty()) ++rep.empty_e_buffers;
    rep.e_total += static_cast<std::int64_t>(buf.size());
    const Route want = net.e_route(k, i);
    for (const BufferEntry& be : buf)
      if (remaining_of(be.packet) != want) ++rep.mismatched_routes;
  }

  const Buffer& ing = engine.buffer(ge.ingress);
  rep.ingress_count = static_cast<std::int64_t>(ing.size());
  const Route want_f = net.f_route(k);
  for (const BufferEntry& be : ing)
    if (remaining_of(be.packet) != want_f) ++rep.mismatched_routes;

  for (EdgeId e : ge.f_path)
    rep.stray_packets += static_cast<std::int64_t>(engine.queue_size(e));
  rep.egress_count = static_cast<std::int64_t>(engine.queue_size(ge.egress));
  return rep;
}

// --- LpsPhase ----------------------------------------------------------------

LpsPhase::LpsPhase(const ChainedGadgets& net, LpsConfig cfg)
    : net_(net), cfg_(cfg) {
  AQT_REQUIRE(cfg_.n == net_.n,
              "LpsConfig::n (" << cfg_.n << ") must match the network's F_n "
                               "parameter (" << net_.n << ")");
}

void LpsPhase::step(Time now, const Engine& engine, AdversaryStep& out) {
  if (!initialized_) {
    end_time_ = initialize(now - 1, engine, out);
    initialized_ = true;
  }
  for (Stream& s : streams_) {
    const std::int64_t k = s.pacer.due(now);
    for (std::int64_t i = 0; i < k; ++i) {
      const std::uint64_t tag = s.route.size() == 1 ? kTagShort : kTagLong;
      out.injections.push_back(Injection{s.route, tag});
    }
  }
}

void LpsPhase::add_stream(Route route, Time start, std::int64_t total) {
  if (total <= 0) return;
  streams_.push_back(Stream{std::move(route), RatePacer(cfg_.r, start, total)});
}

void LpsPhase::extend_buffer(const Engine& engine, EdgeId edge,
                             const Route& extension, AdversaryStep& out) {
  for (const BufferEntry& be : engine.buffer(edge).ordered_entries()) {
    const Packet& p = engine.packet(be.packet);
    Route suffix(p.route.begin() + static_cast<std::ptrdiff_t>(p.hop) + 1,
                 p.route.end());
    suffix.insert(suffix.end(), extension.begin(), extension.end());
    out.reroutes.push_back(Reroute{be.packet, std::move(suffix)});
  }
}

// --- LpsBootstrap (Lemma 3.15) ------------------------------------------------

LpsBootstrap::LpsBootstrap(const ChainedGadgets& net, LpsConfig cfg,
                           std::size_t k)
    : LpsPhase(net, cfg), k_(k) {
  AQT_REQUIRE(k < net.gadgets.size(), "gadget index out of range");
}

Time LpsBootstrap::initialize(Time tau, const Engine& engine,
                              AdversaryStep& out) {
  const GadgetEdges& ge = net_.gadgets[k_];
  // Phases initialize during substep 2 of their first step, after buffers
  // already sent once: the ingress popped exactly one flat packet (it was
  // absorbed), so the queue held c0 + 1 packets at the phase boundary tau.
  const auto c0 = static_cast<std::int64_t>(engine.queue_size(ge.ingress));
  const std::int64_t S = (c0 + 1) / 2;
  AQT_REQUIRE(S >= 1, "bootstrap needs at least 2 packets at the ingress");
  if (cfg_.enforce_s0)
    AQT_REQUIRE(S >= cfg_.s0, "bootstrap S=" << S << " below S0=" << cfg_.s0);
  s_ = S;

  // Part (1): extend the flat packets' routes to a, e1..en, a'.
  Route ext(ge.e_path.begin(), ge.e_path.end());
  ext.push_back(ge.egress);
  extend_buffer(engine, ge.ingress, ext, out);

  const double r = cfg_.r.to_double();
  const double Rn = lps_R(r, cfg_.n);
  const std::int64_t s_prime = ifloor(2.0 * static_cast<double>(S) *
                                      (1.0 - Rn));

  // Part (2): single-edge decoy streams on e_1..e_n.
  if (!cfg_.disable_decoys) {
    for (std::int64_t i = 1; i <= cfg_.n; ++i) {
      const double ti = lps_t(static_cast<double>(S), r, i);
      add_stream({ge.e_path[static_cast<std::size_t>(i - 1)]}, tau + i,
                 ifloor(r * ti));
    }
  }

  // Part (3): S' + n packets at rate r from step tau+1 -- the first n with
  // the single-edge route {a}, the rest with route a, f1..fn, a'.  Realized
  // as two back-to-back floor-paced streams on edge a.
  RatePacer singles_pacer(cfg_.r, tau + 1, cfg_.n);
  add_stream({ge.ingress}, tau + 1, cfg_.n);
  add_stream(net_.f_route(k_), singles_pacer.completion_time() + 1, s_prime);

  return tau + 2 * S + cfg_.n;
}

// --- LpsHandoff (Lemma 3.6) ----------------------------------------------------

LpsHandoff::LpsHandoff(const ChainedGadgets& net, LpsConfig cfg, std::size_t k)
    : LpsPhase(net, cfg), k_(k) {
  AQT_REQUIRE(k + 1 < net.gadgets.size(),
              "handoff needs a successor gadget (k=" << k << ", M="
                                                     << net.gadgets.size()
                                                     << ")");
}

Time LpsHandoff::initialize(Time tau, const Engine& engine,
                            AdversaryStep& out) {
  const GadgetEdges& cur = net_.gadgets[k_];
  const GadgetEdges& nxt = net_.gadgets[k_ + 1];

  // By the time initialize runs (substep 2 of the first step) each C(S, F)
  // buffer already sent once: one e-chain packet moved into the egress
  // buffer and one ingress packet moved onto f_1, so both totals read one
  // short of their value at the phase boundary.
  std::int64_t s_e = 0;
  for (EdgeId e : cur.e_path)
    s_e += static_cast<std::int64_t>(engine.queue_size(e));
  const auto s_a = static_cast<std::int64_t>(engine.queue_size(cur.ingress));
  const std::int64_t S = std::min(s_e, s_a) + 1;
  AQT_REQUIRE(S >= 1, "handoff needs C(S, F) with S >= 1; e-buffers hold "
                          << s_e << ", ingress holds " << s_a);
  if (cfg_.enforce_s0)
    AQT_REQUIRE(S >= cfg_.s0, "handoff S=" << S << " below S0=" << cfg_.s0);
  s_ = S;

  // Part (1): extend every old packet in F(k) by e'_1..e'_n, a''.  This
  // covers the two packets that already advanced this step (the one in the
  // egress buffer and the one on f_1) along with everything still queued.
  Route ext(nxt.e_path.begin(), nxt.e_path.end());
  ext.push_back(nxt.egress);
  for (EdgeId e : cur.e_path) extend_buffer(engine, e, ext, out);
  for (EdgeId e : cur.f_path) extend_buffer(engine, e, ext, out);
  extend_buffer(engine, cur.ingress, ext, out);
  extend_buffer(engine, cur.egress, ext, out);

  const double r = cfg_.r.to_double();
  const double Rn = lps_R(r, cfg_.n);
  const std::int64_t s_prime = ifloor(2.0 * static_cast<double>(S) *
                                      (1.0 - Rn));

  // Part (2): decoy streams on e'_1..e'_n.
  if (!cfg_.disable_decoys) {
    for (std::int64_t i = 1; i <= cfg_.n; ++i) {
      const double ti = lps_t(static_cast<double>(S), r, i);
      add_stream({nxt.e_path[static_cast<std::size_t>(i - 1)]}, tau + i,
                 ifloor(r * ti));
    }
  }

  // Part (3): rS packets with route a, f1..fn, a', f'1..f'n, a''.
  const std::int64_t part3 = cfg_.r.floor_mul(S);
  Route long_route = net_.f_route(k_);  // a, f1..fn, a'
  const Route next_f = net_.f_route(k_ + 1);  // a', f'1..f'n, a''
  long_route.insert(long_route.end(), next_f.begin() + 1, next_f.end());
  add_stream(std::move(long_route), tau + 1, part3);

  // Part (4): X = S' - rS + n packets with route a', f'1..f'n, a'' starting
  // after step S + n (Claim 3.7 guarantees 0 < X <= rS for S >= S0).
  const std::int64_t X = s_prime - part3 + cfg_.n;
  AQT_REQUIRE(X >= 0, "part-4 count X=" << X << " negative; S=" << S
                                        << " is too small for n=" << cfg_.n);
  add_stream(next_f, tau + S + cfg_.n + 1, X);

  return tau + 2 * S + cfg_.n;
}

// --- LpsDrain -----------------------------------------------------------------

LpsDrain::LpsDrain(const ChainedGadgets& net, LpsConfig cfg, std::size_t k)
    : LpsPhase(net, cfg), k_(k) {
  AQT_REQUIRE(k < net.gadgets.size(), "gadget index out of range");
}

Time LpsDrain::initialize(Time tau, const Engine& engine, AdversaryStep&) {
  const GadgetEdges& ge = net_.gadgets[k_];
  std::int64_t s_e = 0;
  for (EdgeId e : ge.e_path)
    s_e += static_cast<std::int64_t>(engine.queue_size(e));
  const auto s_a = static_cast<std::int64_t>(engine.queue_size(ge.ingress));
  s_ = std::min(s_e, s_a) + 1;  // Both buffers popped once this step.
  // 2S packets arrive at the egress over S + n steps while it sends one per
  // step; afterwards >= S - n remain queued there (proof of Lemma 3.13).
  return tau + s_ + cfg_.n;
}

// --- LpsStitch (Lemma 3.16) -----------------------------------------------------

LpsStitch::LpsStitch(const ChainedGadgets& net, LpsConfig cfg)
    : LpsPhase(net, cfg) {
  AQT_REQUIRE(net.back_edge != kNoEdge,
              "stitch needs the closed chain (build_closed_chain)");
}

Time LpsStitch::initialize(Time tau, const Engine& engine, AdversaryStep&) {
  const EdgeId a0 = net_.gadgets.back().egress;
  const EdgeId a1 = net_.back_edge;
  const EdgeId a2 = net_.gadgets.front().ingress;

  // One old packet crossed a0 (and was absorbed) during this step's first
  // substep, so the queue held one more at the phase boundary.
  const auto S = static_cast<std::int64_t>(engine.queue_size(a0)) + 1;
  AQT_REQUIRE(S >= 1, "stitch needs packets queued at the egress");
  s_ = S;

  const std::int64_t c1 = cfg_.r.floor_mul(S);
  const std::int64_t c2 = cfg_.r.floor_mul(c1);
  const std::int64_t c3 = cfg_.r.floor_mul(c2);

  // Step (1): rS packets along the whole 3-edge path, queued behind the old
  // packets at a0.
  add_stream({a0, a1, a2}, tau + 1, c1);
  // Step (2): r^2 S packets at the tail of a2; they mix with step (1)'s.
  add_stream({a2}, tau + S + 1, c2);
  // Step (3): r^3 S fresh packets at the tail of a2, queued last.
  add_stream({a2}, tau + S + c1 + 1, c3);

  // The paper ends at tau + S + rS + r^2 S; step-(1) packets reach a2 two
  // hops (plus one pacing step) later than the idealized accounting, so a
  // few extra steps let the last stale packets drain before hand-over.
  return tau + S + c1 + c2 + 4;
}

// --- LpsAdversary (Theorem 3.17) -------------------------------------------------

LpsAdversary::LpsAdversary(const ChainedGadgets& net, LpsConfig cfg,
                           std::int64_t max_iterations)
    : net_(net), cfg_(cfg), max_iterations_(max_iterations) {
  AQT_REQUIRE(net.back_edge != kNoEdge,
              "Theorem 3.17 needs the closed chain (build_closed_chain)");
  AQT_REQUIRE(max_iterations >= 1, "need at least one iteration");
}

void LpsAdversary::step(Time now, const Engine& engine, AdversaryStep& out) {
  if (done_) return;
  if (current_ == nullptr || current_->finished(now)) advance(now, engine);
  if (done_ || current_ == nullptr) return;
  current_->step(now, engine, out);
}

void LpsAdversary::advance(Time now, const Engine& engine) {
  const EdgeId ingress0 = net_.gadgets.front().ingress;
  const std::size_t M = net_.gadgets.size();

  if (current_ == nullptr) {
    // Very first call: begin iteration 1 with a bootstrap.
    record_ = LpsIterationRecord{};
    record_.iteration = 1;
    record_.t_start = now;
    record_.s_start = static_cast<std::int64_t>(engine.queue_size(ingress0));
    stage_ = Stage::kBootstrap;
    current_ = std::make_unique<LpsBootstrap>(net_, cfg_, 0);
    return;
  }

  // The finished phase tells us what it measured.
  switch (stage_) {
    case Stage::kBootstrap:
      record_.s_cascade.push_back(inspect_gadget(engine, net_, 0).S());
      if (M >= 2) {
        stage_ = Stage::kHandoff;
        handoff_k_ = 0;
        current_ = std::make_unique<LpsHandoff>(net_, cfg_, handoff_k_);
      } else {
        stage_ = Stage::kDrain;
        current_ = std::make_unique<LpsDrain>(net_, cfg_, M - 1);
      }
      return;
    case Stage::kHandoff:
      record_.s_cascade.push_back(
          inspect_gadget(engine, net_, handoff_k_ + 1).S());
      if (handoff_k_ + 2 < M) {
        ++handoff_k_;
        current_ = std::make_unique<LpsHandoff>(net_, cfg_, handoff_k_);
      } else {
        stage_ = Stage::kDrain;
        current_ = std::make_unique<LpsDrain>(net_, cfg_, M - 1);
      }
      return;
    case Stage::kDrain:
      stage_ = Stage::kStitch;
      current_ = std::make_unique<LpsStitch>(net_, cfg_);
      return;
    case Stage::kStitch: {
      // Iteration complete: record and either loop or stop.
      record_.t_end = now - 1;
      record_.s_end = static_cast<std::int64_t>(engine.queue_size(ingress0));
      history_.push_back(record_);
      const std::int64_t next_s = record_.s_end;
      if (record_.iteration >= max_iterations_ ||
          next_s < std::max<std::int64_t>(2, cfg_.enforce_s0 ? 2 * cfg_.s0
                                                             : 2)) {
        done_ = true;
        current_.reset();
        return;
      }
      const std::int64_t iter = record_.iteration + 1;
      record_ = LpsIterationRecord{};
      record_.iteration = iter;
      record_.t_start = now;
      record_.s_start = next_s;
      stage_ = Stage::kBootstrap;
      current_ = std::make_unique<LpsBootstrap>(net_, cfg_, 0);
      return;
    }
  }
}

}  // namespace aqt
