// Leaky-bucket ((b, r), a.k.a. (sigma, rho)) adversaries.
//
// Alongside the paper's rate-r and windowed (w, r) adversaries, much of
// the adversarial queuing literature (Cruz's network calculus; Andrews et
// al.) constrains the adversary by a *burst* parameter: for every edge and
// every interval of length L, at most b + r*L injected packets may require
// the edge.  A (w, r) adversary is a (b, r) adversary with b = r*w; the
// paper's rate-r adversary is essentially b = 1 with a ceiling.
//
// TokenBucket enforces the constraint by construction (exact rational
// token arithmetic); BucketAdversary generates random traffic under it;
// check_bucket verifies executions post-hoc with the same suffix-minimum
// trick as the rate-r checker.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/util/rational.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {

/// Exact token bucket: capacity b (tokens, integer), refill rate r per
/// step (rational), starts full.  Tokens are tracked as an exact rational
/// so no drift ever accrues.
class TokenBucket {
 public:
  TokenBucket(std::int64_t burst, const Rat& rate);

  /// Advances the bucket to step `t` (non-decreasing) and returns whether
  /// a token is available.
  [[nodiscard]] bool can_spend(Time t);

  /// Spends one token at step `t`.  Requires can_spend(t).
  void spend(Time t);

  /// Current token count (floor), after advancing to `t`.
  [[nodiscard]] std::int64_t tokens(Time t);

 private:
  void advance(Time t);

  std::int64_t burst_;
  Rat rate_;
  Rat tokens_;
  Time clock_ = 0;
};

/// Post-hoc feasibility: every interval [t1, t2] holds at most
/// floor(b + r*(t2-t1+1)) injections per edge.
RateCheckResult check_bucket(const RateAudit& audit, std::int64_t burst,
                             const Rat& r);

/// Random (b, r) traffic, feasible by construction: one token bucket per
/// edge; an injection is issued only if every edge of its route has a
/// token.
class BucketAdversary final : public Adversary {
 public:
  struct Config {
    std::int64_t burst = 1;
    Rat rate;
    std::int64_t max_route_len = 1;
    std::uint64_t seed = 1;
    std::int64_t attempts_per_step = 4;
  };

  BucketAdversary(const Graph& graph, Config config);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;

  /// Output depends only on the RNG stream and bucket state.
  [[nodiscard]] bool is_oblivious() const override { return true; }

  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::int64_t longest_route() const { return longest_; }

 private:
  [[nodiscard]] Route random_route();

  const Graph& graph_;
  Config config_;
  Rng rng_;
  std::vector<TokenBucket> buckets_;
  std::uint64_t injected_ = 0;
  std::int64_t longest_ = 0;
};

}  // namespace aqt
