#include "aqt/adversaries/scripted.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {

void ScriptedAdversary::inject_at(Time t, Route route, std::uint64_t tag) {
  AQT_REQUIRE(t >= 1, "injections start at step 1");
  script_[t].injections.push_back(Injection{std::move(route), tag});
  last_event_ = std::max(last_event_, t);
}

void ScriptedAdversary::reroute_at(Time t, PacketId packet,
                                   Route new_suffix) {
  AQT_REQUIRE(t >= 1, "reroutes start at step 1");
  script_[t].reroutes.push_back(Reroute{packet, std::move(new_suffix)});
  last_event_ = std::max(last_event_, t);
}

void ScriptedAdversary::step(Time now, const Engine&, AdversaryStep& out) {
  auto it = script_.find(now);
  if (it == script_.end()) return;
  out.injections.insert(out.injections.end(), it->second.injections.begin(),
                        it->second.injections.end());
  out.reroutes.insert(out.reroutes.end(), it->second.reroutes.begin(),
                      it->second.reroutes.end());
}

bool ScriptedAdversary::finished(Time now) const { return now > last_event_; }

void StreamAdversary::add_stream(Route route, Rat rate, Time start,
                                 std::int64_t total, std::uint64_t tag) {
  AQT_REQUIRE(total >= 0, "stream total must be >= 0");
  streams_.push_back(Entry{std::move(route), RatePacer(rate, start, total),
                           tag});
}

void StreamAdversary::step(Time now, const Engine&, AdversaryStep& out) {
  for (Entry& s : streams_) {
    const std::int64_t k = s.pacer.due(now);
    for (std::int64_t i = 0; i < k; ++i)
      out.injections.push_back(Injection{s.route, s.tag});
  }
}

bool StreamAdversary::finished(Time) const {
  return std::all_of(streams_.begin(), streams_.end(),
                     [](const Entry& s) { return s.pacer.exhausted(); });
}

DelayAdversary::DelayAdversary(std::unique_ptr<Adversary> inner, Time delay)
    : inner_(std::move(inner)), delay_(delay) {
  AQT_REQUIRE(inner_ != nullptr, "null inner adversary");
  AQT_REQUIRE(delay_ >= 0, "negative delay");
}

void DelayAdversary::step(Time now, const Engine& engine,
                          AdversaryStep& out) {
  if (now <= delay_) return;
  inner_->step(now - delay_, engine, out);
}

bool DelayAdversary::finished(Time now) const {
  return now > delay_ && inner_->finished(now - delay_);
}

void MergeAdversary::add(std::unique_ptr<Adversary> adversary) {
  AQT_REQUIRE(adversary != nullptr, "null member");
  members_.push_back(std::move(adversary));
}

void MergeAdversary::step(Time now, const Engine& engine,
                          AdversaryStep& out) {
  for (auto& m : members_) m->step(now, engine, out);
}

bool MergeAdversary::finished(Time now) const {
  return std::all_of(members_.begin(), members_.end(),
                     [&](const auto& m) { return m->finished(now); });
}

bool MergeAdversary::is_oblivious() const {
  return std::all_of(members_.begin(), members_.end(),
                     [](const auto& m) { return m->is_oblivious(); });
}

void SequenceAdversary::append(std::unique_ptr<Adversary> adversary) {
  AQT_REQUIRE(adversary != nullptr, "null stage");
  stages_.push_back(std::move(adversary));
}

void SequenceAdversary::step(Time now, const Engine& engine,
                             AdversaryStep& out) {
  // Advance past finished stages *before* acting, so a stage that finishes
  // at step t hands over at step t+1, never sharing a step with its
  // successor (phases assume exclusive intervals).
  while (current_ < stages_.size() && stages_[current_]->finished(now))
    ++current_;
  if (current_ < stages_.size()) stages_[current_]->step(now, engine, out);
}

bool SequenceAdversary::finished(Time now) const {
  for (std::size_t i = current_; i < stages_.size(); ++i)
    if (!stages_[i]->finished(now)) return false;
  return true;
}

bool SequenceAdversary::is_oblivious() const {
  return std::all_of(stages_.begin(), stages_.end(),
                     [](const auto& s) { return s->is_oblivious(); });
}

}  // namespace aqt
