#include "aqt/adversaries/stochastic.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {

StochasticAdversary::StochasticAdversary(const Graph& graph,
                                         StochasticConfig config)
    : graph_(graph),
      config_(config),
      rng_(config.seed),
      budget_(config.r.floor_mul(config.w)),
      recent_(graph.edge_count()) {
  AQT_REQUIRE(config_.w >= 1, "window must be >= 1");
  AQT_REQUIRE(config_.max_route_len >= 1, "route length cap must be >= 1");
  AQT_REQUIRE(budget_ >= 1,
              "floor(w*r) = 0: this (w, r) adversary cannot inject at all; "
              "choose a larger window");
  if (config_.mode == StochasticConfig::Mode::kHotspot) {
    // Deterministically pick the edge with the most route-extension options:
    // the one maximizing in-degree(tail) * out-degree(head).
    std::uint64_t best = 0;
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      const auto score =
          static_cast<std::uint64_t>(
              graph_.in_edges(graph_.tail(e)).size() + 1) *
          static_cast<std::uint64_t>(
              graph_.out_edges(graph_.head(e)).size() + 1);
      if (score > best) {
        best = score;
        hotspot_ = e;
      }
    }
    AQT_CHECK(hotspot_ != kNoEdge, "no edges in graph");
  }
}

Route StochasticAdversary::random_route() {
  // Grow a simple path by random forward extension; in hotspot mode, start
  // from the hotspot edge and extend on both sides.
  Route route;
  std::vector<bool> visited(graph_.node_count(), false);

  EdgeId start;
  if (config_.mode == StochasticConfig::Mode::kHotspot) {
    start = hotspot_;
  } else {
    start = static_cast<EdgeId>(rng_.below(graph_.edge_count()));
  }
  route.push_back(start);
  visited[graph_.tail(start)] = true;
  visited[graph_.head(start)] = true;

  const auto target_len = static_cast<std::size_t>(
      rng_.range(1, config_.max_route_len));

  // Extend forward.
  while (route.size() < target_len) {
    const NodeId at = graph_.head(route.back());
    const auto& outs = graph_.out_edges(at);
    if (outs.empty()) break;
    // Collect extensions that keep the path simple.
    Route options;
    for (EdgeId e : outs)
      if (!visited[graph_.head(e)]) options.push_back(e);
    if (options.empty()) break;
    const EdgeId pick = options[rng_.below(options.size())];
    visited[graph_.head(pick)] = true;
    route.push_back(pick);
  }
  // Extend backward (relevant in hotspot mode so the contended edge sits in
  // the middle of routes, not always first).
  while (route.size() < target_len) {
    const NodeId at = graph_.tail(route.front());
    const auto& ins = graph_.in_edges(at);
    if (ins.empty()) break;
    Route options;
    for (EdgeId e : ins)
      if (!visited[graph_.tail(e)]) options.push_back(e);
    if (options.empty()) break;
    const EdgeId pick = options[rng_.below(options.size())];
    visited[graph_.tail(pick)] = true;
    route.insert(route.begin(), pick);
  }
  return route;
}

bool StochasticAdversary::fits_budget(const Route& route, Time now) const {
  for (EdgeId e : route) {
    const auto& uses = recent_[e];
    // Uses within (now - w, now] count against the window ending at `now`.
    std::int64_t in_window = 0;
    for (auto it = uses.rbegin(); it != uses.rend(); ++it) {
      if (*it <= now - config_.w) break;
      ++in_window;
    }
    if (in_window + 1 > budget_) return false;
  }
  return true;
}

void StochasticAdversary::charge(const Route& route, Time now) {
  for (EdgeId e : route) {
    auto& uses = recent_[e];
    uses.push_back(now);
    while (!uses.empty() && uses.front() <= now - config_.w)
      uses.pop_front();
  }
}

void StochasticAdversary::step(Time now, const Engine&, AdversaryStep& out) {
  for (std::int64_t a = 0; a < config_.attempts_per_step; ++a) {
    Route route = random_route();
    if (!fits_budget(route, now)) continue;
    charge(route, now);
    longest_ = std::max(longest_, static_cast<std::int64_t>(route.size()));
    ++injected_;
    out.injections.push_back(Injection{std::move(route), /*tag=*/0});
  }
}

ConvoyAdversary::ConvoyAdversary(Route path, std::int64_t w, Rat r)
    : path_(std::move(path)), w_(w), burst_(r.floor_mul(w)) {
  AQT_REQUIRE(w_ >= 1, "window must be >= 1");
  AQT_REQUIRE(!path_.empty(), "convoy path must be non-empty");
}

void ConvoyAdversary::step(Time now, const Engine&, AdversaryStep& out) {
  // Steps 1..burst of each aligned window carry one packet each.  Any w
  // consecutive steps contain each residue class exactly once, so every
  // sliding window sees at most `burst_` injections per edge.
  const std::int64_t phase = (now - 1) % w_;
  if (phase < burst_) out.injections.push_back(Injection{path_, /*tag=*/0});
}

}  // namespace aqt
