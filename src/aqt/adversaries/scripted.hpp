// Scripted and composite adversaries.
//
// ScriptedAdversary replays a fixed list of timed injections/reroutes —
// handy in tests where the exact trace matters.  StreamAdversary runs a set
// of floor-paced streams (see pacer.hpp).  SequenceAdversary chains
// adversaries back-to-back: when the current one reports finished(), the
// next takes over on the following step — the composition operation used
// throughout §3.3 ("the adversary that results from concatenating the
// adversaries A_i and A").
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/adversaries/pacer.hpp"

namespace aqt {

/// Replays timed injections and reroutes verbatim.
class ScriptedAdversary final : public Adversary {
 public:
  /// Registers an injection at step `t` (t >= 1).
  void inject_at(Time t, Route route, std::uint64_t tag = 0);

  /// Registers a reroute at step `t`.
  void reroute_at(Time t, PacketId packet, Route new_suffix);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;
  /// Scripts never read the engine: fully precompilable.
  [[nodiscard]] bool is_oblivious() const override { return true; }

 private:
  std::map<Time, AdversaryStep> script_;
  Time last_event_ = 0;
};

/// Runs a static set of paced streams; finished when all are exhausted.
class StreamAdversary final : public Adversary {
 public:
  /// Adds `total` packets with `route` at `rate` from step `start`.
  void add_stream(Route route, Rat rate, Time start, std::int64_t total,
                  std::uint64_t tag = 0);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;
  /// Pacers advance on `now` alone: fully precompilable.
  [[nodiscard]] bool is_oblivious() const override { return true; }

 private:
  struct Entry {
    Route route;
    RatePacer pacer;
    std::uint64_t tag;
  };
  std::vector<Entry> streams_;
};

/// Shifts an adversary's clock: the inner adversary sees step 1 when the
/// outer step reaches `delay` + 1 (nothing is emitted before that).
class DelayAdversary final : public Adversary {
 public:
  DelayAdversary(std::unique_ptr<Adversary> inner, Time delay);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;
  /// A pure clock shift: oblivious iff the inner adversary is.
  [[nodiscard]] bool is_oblivious() const override {
    return inner_->is_oblivious();
  }

 private:
  std::unique_ptr<Adversary> inner_;
  Time delay_;
};

/// Runs several adversaries simultaneously, concatenating their work each
/// step (injections in member order).  finished() when all members are.
class MergeAdversary final : public Adversary {
 public:
  void add(std::unique_ptr<Adversary> adversary);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;
  /// Oblivious iff every member is.
  [[nodiscard]] bool is_oblivious() const override;

 private:
  std::vector<std::unique_ptr<Adversary>> members_;
};

/// Chains adversaries: each runs until it reports finished(), then the next
/// starts.  finished() once the last one finishes.
class SequenceAdversary final : public Adversary {
 public:
  void append(std::unique_ptr<Adversary> adversary);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;
  /// Oblivious iff every stage is (stage hand-off depends only on time).
  [[nodiscard]] bool is_oblivious() const override;

  /// Index of the currently-active stage (== size() when all done).
  [[nodiscard]] std::size_t stage() const { return current_; }
  [[nodiscard]] std::size_t size() const { return stages_.size(); }
  [[nodiscard]] Adversary* stage_at(std::size_t i) {
    return stages_.at(i).get();
  }

 private:
  std::vector<std::unique_ptr<Adversary>> stages_;
  std::size_t current_ = 0;
};

}  // namespace aqt
