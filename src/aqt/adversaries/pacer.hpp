// Exact rate pacing for adversary injection schedules.
//
// The paper specifies schedules as "inject packets at rate r during
// [t1, t2]" and explicitly ignores floors and ceilings.  We make this exact
// with *cumulative floor pacing*: a stream that starts at step `start` has
// emitted floor(r * k) packets after its k-th step.  Floor pacing has two
// properties the constructions rely on:
//
//  1. Interval feasibility inside a stream: any sub-interval of length L
//     receives at most ceil(r*L) packets.
//  2. Composition: the union of *disjoint* floor-paced streams on the same
//     edge never exceeds the rate-r budget on any interval, because
//     floor(a) + floor(b) <= floor(a + b) (superadditivity) and the budget
//     ceil(r*L) only grows with the enclosing interval.
//
// Property 2 is what lets the multi-phase LPS adversary stay machine-checked
// rate-feasible without global coordination between phases.
#pragma once

#include <cstdint>

#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// A floor-paced packet stream: `total` packets at rate `rate` from step
/// `start` (inclusive).  Stateless in time — `due(t)` may be queried for any
/// non-decreasing sequence of steps.
class RatePacer {
 public:
  /// total < 0 means unbounded.
  RatePacer(Rat rate, Time start, std::int64_t total);

  /// Packets to emit at step t (0 for t < start; otherwise the cumulative
  /// floor quota minus what was already emitted).  Advances internal state;
  /// call exactly once per step with non-decreasing t.
  std::int64_t due(Time t);

  /// All packets emitted?
  [[nodiscard]] bool exhausted() const {
    return total_ >= 0 && emitted_ >= total_;
  }

  [[nodiscard]] std::int64_t emitted() const { return emitted_; }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] Time start() const { return start_; }

  /// First step by which all `total` packets have been emitted:
  /// start + ceil(total/r) - 1.  Requires a bounded stream and rate > 0.
  [[nodiscard]] Time completion_time() const;

 private:
  Rat rate_;
  Time start_;
  std::int64_t total_;
  std::int64_t emitted_ = 0;
};

}  // namespace aqt
