// Interned route storage: deduplicated routes in a chunked flat pool.
//
// Packets used to own their routes as individual std::vector<EdgeId>, which
// made every injection copy its route onto the heap and every reroute
// rebuild one.  The RouteTable replaces that with interning: a route is
// written once into a chunked EdgeId pool and every packet that travels it
// holds only a (pointer, length) RouteRef.  Chunks are fixed-size and never
// reallocate, so refs stay valid for the table's lifetime.
//
// Deduplication is content-hash based (FNV-1a over the edge ids): injecting
// the same route twice — the common case for scripted, stream, and bucket
// adversaries, and for the repeated paths of stochastic workloads on small
// graphs — costs one hash probe and zero pool bytes.  Reroutes splice
// copy-on-write: the spliced route is interned as a whole, leaving every
// other packet on the original route untouched.
//
// The pool only grows (absorbed packets' routes stay interned so later
// duplicates keep hitting), bounded by the number of *distinct* routes seen;
// `pool_bytes()` is exported as the `aqt_route_pool_bytes` gauge so growth
// is observable.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "aqt/core/types.hpp"

namespace aqt {

/// Deduplicating, stable-storage route interner.
class RouteTable {
 public:
  /// Interns `route`, returning a stable ref.  Identical contents return
  /// the same ref (pointer equality included).  Empty routes intern to a
  /// null ref.
  RouteRef intern(RouteSpan route);

  /// Distinct routes interned so far.
  [[nodiscard]] std::uint64_t route_count() const { return count_; }

  /// Bytes of pool storage held (capacity, not just used edges).
  [[nodiscard]] std::uint64_t pool_bytes() const { return pool_bytes_; }

 private:
  // 16k edges per chunk: large enough that chunk overhead is noise, small
  // enough that a run with few distinct routes stays cache-resident.
  static constexpr std::size_t kChunkEdges = std::size_t{1} << 14;

  const EdgeId* append(RouteSpan route);

  std::vector<std::unique_ptr<EdgeId[]>> chunks_;
  std::size_t chunk_used_ = kChunkEdges;  ///< Forces a first-chunk alloc.
  // Hash -> interned refs with that hash (collision chain; scanned linearly,
  // compared by content).  Used for point lookups only, never iterated.
  std::unordered_map<std::uint64_t, std::vector<RouteRef>> dedup_;
  std::uint64_t count_ = 0;
  std::uint64_t pool_bytes_ = 0;
};

}  // namespace aqt
