// Greedy queuing protocols (paper §2) as priority-key assignments.
//
// Every protocol studied in the adversarial queuing literature that this
// library covers can be expressed as: when a packet arrives at a buffer, it
// receives a priority key; the buffer always forwards the packet with the
// smallest key.  The key is *static while the packet sits in that buffer*
// (remaining-route lengths only change on hops), which lets buffers be
// ordered sets and makes the engine protocol-agnostic and O(log n).
//
// Two classification predicates from the paper are exposed:
//  * historic (Definition 3.1): scheduling is independent of the remaining
//    route beyond the next edge.  Rerouting (Lemma 3.3) is sound only for
//    historic policies, and the engine enforces this.
//  * time-priority (Definition 4.2): a packet arriving at a buffer at time t
//    has priority over every packet injected after t.  Time-priority
//    protocols enjoy the stronger 1/d stability threshold (Theorem 4.3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "aqt/core/packet.hpp"
#include "aqt/core/types.hpp"
#include "aqt/util/rng.hpp"

namespace aqt {

/// Buffer priority: lexicographic (k1, k2), then global arrival sequence,
/// then packet id.  Smaller sorts first (= forwarded first).
struct PriorityKey {
  std::int64_t k1 = 0;
  std::int64_t k2 = 0;
};

/// Closed-form key rules the engine can compute inline, skipping the
/// virtual `key()` dispatch on its hottest path (one call per enqueue).
/// A protocol returning anything but kCustom asserts that its key() is
/// *exactly* the listed formula; Engine::enqueue holds the other half of
/// the contract (a switch mirroring the formulas below).
enum class KeyRule : std::uint8_t {
  kCustom,  ///< Call the virtual key().
  kFifo,    ///< {seq, 0}
  kLifo,    ///< {-seq, 0}
  kLis,     ///< {inject_time, seq}
  kNis,     ///< {-inject_time, -seq}
  kFtg,     ///< {-remaining, seq}
  kNtg,     ///< {remaining, seq}
  kFfs,     ///< {-traversed, seq}
  kNts,     ///< {traversed, seq}
};

/// A greedy queuing policy.
class Protocol {
 public:
  virtual ~Protocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Priority key assigned when `p` arrives at the buffer of its current
  /// edge at step `arrival` with global arrival sequence `seq`.
  [[nodiscard]] virtual PriorityKey key(const Packet& p, Time arrival,
                                        std::uint64_t seq) const = 0;

  /// Inline-dispatch hint; kCustom (the default) always works and means
  /// every key goes through the virtual call.
  [[nodiscard]] virtual KeyRule key_rule() const { return KeyRule::kCustom; }

  /// Definition 3.1 (decisions ignore the route beyond the next edge).
  [[nodiscard]] virtual bool is_historic() const = 0;

  /// Definition 4.2 (arrival at t beats any packet injected after t).
  [[nodiscard]] virtual bool is_time_priority() const = 0;
};

/// First-in-first-out: forward in order of arrival at this buffer.
class FifoProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "FIFO"; }
  [[nodiscard]] PriorityKey key(const Packet&, Time,
                                std::uint64_t seq) const override {
    return {static_cast<std::int64_t>(seq), 0};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kFifo;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return true; }
};

/// Last-in-first-out: forward the most recent arrival.
class LifoProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "LIFO"; }
  [[nodiscard]] PriorityKey key(const Packet&, Time,
                                std::uint64_t seq) const override {
    return {-static_cast<std::int64_t>(seq), 0};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kLifo;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Longest-in-system: forward the packet with the earliest injection time.
class LisProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "LIS"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {p.inject_time, static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kLis;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return true; }
};

/// Newest-in-system (a.k.a. shortest-in-system): latest injection first.
class NisProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "NIS"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {-p.inject_time, -static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kNis;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Furthest-to-go: most remaining edges first.  Not historic.
class FtgProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "FTG"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {-static_cast<std::int64_t>(p.remaining()),
            static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kFtg;
  }
  [[nodiscard]] bool is_historic() const override { return false; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Nearest-to-go: fewest remaining edges first.  Not historic.
class NtgProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "NTG"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {static_cast<std::int64_t>(p.remaining()),
            static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kNtg;
  }
  [[nodiscard]] bool is_historic() const override { return false; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Furthest-from-source: most traversed edges first.
class FfsProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "FFS"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {-static_cast<std::int64_t>(p.traversed()),
            static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kFfs;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Nearest-to-source: fewest traversed edges first.
class NtsProtocol final : public Protocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "NTS"; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time,
                                std::uint64_t seq) const override {
    return {static_cast<std::int64_t>(p.traversed()),
            static_cast<std::int64_t>(seq)};
  }
  [[nodiscard]] KeyRule key_rule() const override {
    return KeyRule::kNts;
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return false; }
};

/// Uniform random choice among waiting packets (deterministic given seed).
class RandomProtocol final : public Protocol {
 public:
  explicit RandomProtocol(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] std::string_view name() const override { return "RANDOM"; }
  [[nodiscard]] PriorityKey key(const Packet&, Time,
                                std::uint64_t) const override {
    return {static_cast<std::int64_t>(rng_.next() >> 1), 0};
  }
  [[nodiscard]] bool is_historic() const override { return true; }
  [[nodiscard]] bool is_time_priority() const override { return false; }

 private:
  mutable Rng rng_;
};

/// User-defined policy from a key function — the extension point for
/// protocols outside the built-in zoo:
///
///   LambdaProtocol oldest_first("OLDEST", /*historic=*/true,
///                               /*time_priority=*/true,
///                               [](const Packet& p, Time, std::uint64_t s) {
///                                 return PriorityKey{p.inject_time,
///                                                    (std::int64_t)s};
///                               });
///
/// The classification flags are declarations the caller is responsible
/// for: claiming historic while keying on the remaining route would let
/// reroutes corrupt buffer order.
class LambdaProtocol final : public Protocol {
 public:
  using KeyFn =
      std::function<PriorityKey(const Packet&, Time, std::uint64_t)>;

  LambdaProtocol(std::string name, bool historic, bool time_priority,
                 KeyFn key);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] PriorityKey key(const Packet& p, Time arrival,
                                std::uint64_t seq) const override {
    return key_(p, arrival, seq);
  }
  [[nodiscard]] bool is_historic() const override { return historic_; }
  [[nodiscard]] bool is_time_priority() const override {
    return time_priority_;
  }

 private:
  std::string name_;
  bool historic_;
  bool time_priority_;
  KeyFn key_;
};

/// Factory: FIFO, LIFO, LIS, NIS, SIS (= NIS), FTG, NTG, FFS, NTS, RANDOM.
/// Throws PreconditionError for unknown names.
std::unique_ptr<Protocol> make_protocol(std::string_view name,
                                        std::uint64_t seed = 0);

/// Names accepted by make_protocol, in canonical order.
const std::vector<std::string>& protocol_names();

}  // namespace aqt
