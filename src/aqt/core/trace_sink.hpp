// Engine-side interface for run-trace evidence recording.
//
// The engine emits a record for every observable event of a run — initial
// packets, per-edge transmissions, absorptions, reroutes, injections, and
// end-of-step queue depths — through this interface when
// EngineConfig::sinks.trace is set.  The concrete writer (the versioned,
// self-describing, content-hashed format of trace/run_trace.hpp) lives in
// the trace layer; core only sees the pure interface so the dependency
// stays acyclic (trace links core, never the reverse).
//
// Packets are identified by their creation *ordinal* (protocol-independent,
// slot-reuse-proof), never by PacketId; edges by dense id, made portable by
// the writer's self-describing edge table.
#pragma once

#include <cstdint>
#include <cstddef>

#include "aqt/core/types.hpp"

namespace aqt {

/// Receives the engine's evidence stream.  Call order per step: begin_step,
/// then every send (substep 1, in sending-edge order), then absorptions and
/// reroutes/injections (substep 2, in application order), then one
/// queue_depth per nonempty buffer.
class RunTraceSink {
 public:
  virtual ~RunTraceSink() = default;

  /// A packet of the initial configuration (time 0), before step 1.
  virtual void record_initial(std::uint64_t ordinal, std::uint64_t tag,
                              RouteSpan route) = 0;

  virtual void begin_step(Time t) = 0;

  /// Buffer of `e` forwarded the packet with creation ordinal `ordinal`.
  virtual void record_send(EdgeId e, std::uint64_t ordinal) = 0;

  /// The packet completed its route this step.
  virtual void record_absorb(std::uint64_t ordinal) = 0;

  /// The adversary replaced the packet's remaining route with `new_suffix`.
  virtual void record_reroute(std::uint64_t ordinal,
                              RouteSpan new_suffix) = 0;

  /// The adversary injected a packet with this route.
  virtual void record_inject(std::uint64_t ordinal, std::uint64_t tag,
                             RouteSpan route) = 0;

  /// End-of-step depth of the (nonempty) buffer of `e`.
  virtual void record_queue_depth(EdgeId e, std::size_t depth) = 0;
};

}  // namespace aqt
