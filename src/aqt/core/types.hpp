// Fundamental identifier and time types shared by the whole library.
//
// Conventions:
//  * Node/edge ids are dense indices into the owning Graph's tables.
//  * Time is a signed 64-bit step counter.  Step 0 is the initial
//    configuration; the first simulated step is step 1 (matching the paper's
//    "at time 0 condition C(S, F) holds; in the time interval [1, S] ...").
//  * A Route is the full simple directed path of a packet, as edge ids.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace aqt {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using PacketId = std::uint64_t;
using Time = std::int64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();
inline constexpr PacketId kNoPacket = std::numeric_limits<PacketId>::max();

/// A packet route: a sequence of edge ids forming a simple directed path.
using Route = std::vector<EdgeId>;

/// A borrowed, read-only view of a route's edges.  Route converts to it
/// implicitly, so interfaces taking RouteSpan accept both owning Routes and
/// interned RouteRefs.
using RouteSpan = std::span<const EdgeId>;

/// A non-owning reference to a route interned in a RouteTable.  The table's
/// chunked pool never reallocates, so the pointer is stable for the table's
/// lifetime.  Exposes the read-only surface of a Route (size, indexing,
/// iteration) so most consumers are agnostic to the interning.
struct RouteRef {
  const EdgeId* data = nullptr;
  std::uint32_t len = 0;

  [[nodiscard]] std::size_t size() const { return len; }
  [[nodiscard]] bool empty() const { return len == 0; }
  [[nodiscard]] const EdgeId* begin() const { return data; }
  [[nodiscard]] const EdgeId* end() const { return data + len; }
  [[nodiscard]] EdgeId front() const { return data[0]; }
  [[nodiscard]] EdgeId back() const { return data[len - 1]; }
  EdgeId operator[](std::size_t i) const { return data[i]; }
  [[nodiscard]] RouteSpan span() const { return {data, len}; }
  // NOLINTNEXTLINE(google-explicit-constructor): span-like view conversion.
  operator RouteSpan() const { return {data, len}; }

  friend bool operator==(const RouteRef& a, const Route& b) {
    return a.len == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Route& a, const RouteRef& b) { return b == a; }
  friend bool operator==(const RouteRef& a, const RouteRef& b) {
    return a.len == b.len && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace aqt
