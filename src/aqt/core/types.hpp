// Fundamental identifier and time types shared by the whole library.
//
// Conventions:
//  * Node/edge ids are dense indices into the owning Graph's tables.
//  * Time is a signed 64-bit step counter.  Step 0 is the initial
//    configuration; the first simulated step is step 1 (matching the paper's
//    "at time 0 condition C(S, F) holds; in the time interval [1, S] ...").
//  * A Route is the full simple directed path of a packet, as edge ids.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace aqt {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;
using PacketId = std::uint64_t;
using Time = std::int64_t;

inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kNoEdge = std::numeric_limits<EdgeId>::max();
inline constexpr PacketId kNoPacket = std::numeric_limits<PacketId>::max();

/// A packet route: a sequence of edge ids forming a simple directed path.
using Route = std::vector<EdgeId>;

}  // namespace aqt
