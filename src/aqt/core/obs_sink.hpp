// Engine-side interfaces for the observability layer (aqt/obs).
//
// Two borrowed sinks, following the pattern of trace_sink.hpp: core defines
// the pure interfaces and calls them when configured; the concrete
// implementations (the wall-clock step-phase profiler and the JSONL
// packet-lifecycle event writer) live in the obs layer, which links core —
// never the reverse.  Both sinks are write-only observers: they may not
// influence the simulation, so enabling them must never change a run
// (aqt-fuzz cross-checks this by comparing run-trace content hashes with
// observability on and off).
//
// When a sink pointer is null the per-step cost is one predictable branch
// per call site — the "near-zero when off" contract the profiler-overhead
// test in tests/obs enforces.
#pragma once

#include <cstddef>
#include <cstdint>

#include "aqt/core/types.hpp"

namespace aqt {

/// The engine's substeps, in execution order within one step.  kTransmit is
/// substep 1 (every nonempty buffer sends), kAbsorb is substep 2a
/// (deliveries: absorptions and re-enqueues), kInject is substep 2b (the
/// adversary's reroutes and injections), kRecord covers end-of-step metric
/// and trace recording, and kAudit is the optional invariant re-derivation.
enum class StepPhase : std::uint8_t {
  kTransmit = 0,
  kAbsorb = 1,
  kInject = 2,
  kRecord = 3,
  kAudit = 4,
};

inline constexpr std::size_t kStepPhaseCount = 5;

/// Stable lower-case phase names ("transmit", "absorb", "inject", "record",
/// "audit") — used as metric labels and in exported schemas.
const char* to_string(StepPhase phase);

/// Receives phase boundaries from the engine.  Call order per step:
/// begin_step, then — when begin_step returned true — begin_phase/end_phase
/// pairs in phase order (a phase with nothing to do may be skipped), then
/// end_step.  When begin_step returns false the engine skips the brackets
/// for that step and instead passes the mask of phases that ran (bit i =
/// StepPhase(i), each ran exactly once) to end_step, so a sink that only
/// samples phase timings keeps exact call accounting without paying the
/// per-boundary cost on every step.  Sinks that time every boundary return
/// true unconditionally and receive mask 0.
class StepPhaseSink {
 public:
  virtual ~StepPhaseSink() = default;

  /// Returns whether this step's phases should be bracketed.
  [[nodiscard]] virtual bool begin_step(Time t) = 0;
  virtual void begin_phase(StepPhase phase) = 0;
  virtual void end_phase(StepPhase phase) = 0;
  /// `skipped_phase_mask` is nonzero only on bracket-skipped steps.
  virtual void end_step(std::uint8_t skipped_phase_mask) = 0;
};

/// End-of-step summary of whole-network state, computed by the engine at
/// the close of the record phase.  All fields are pure functions of the
/// simulation state (no wall clock), so a sink driven only by StepSample
/// values is deterministic by construction.
struct StepSample {
  Time t = 0;
  std::uint64_t in_flight = 0;       ///< Live packets (buffered).
  std::uint64_t injected_total = 0;  ///< Cumulative creations (initial+adv).
  std::uint64_t absorbed_total = 0;  ///< Cumulative absorptions.
  std::uint64_t active_edges = 0;    ///< Edges with nonempty buffers.
  std::uint64_t max_queue = 0;       ///< Largest buffer *this* step.
};

class Engine;

/// Receives one StepSample per executed step — the hook behind the obs
/// layer's time-series recorder and online stability watchdog.  The engine
/// reference is read-only state access for sinks that sample per-edge
/// detail (watched queue depths); like every EngineSinks member, the sink
/// must not influence the run (the aqt-fuzz observer-effect phase and the
/// tests/obs byte-identity suite enforce this).  Null costs one branch per
/// step; a non-null sink costs one extra pass over the active-edge bitmap
/// (to compute max_queue) plus whatever the sink itself does.
class StepSampleSink {
 public:
  virtual ~StepSampleSink() = default;

  virtual void on_step(const StepSample& sample, const Engine& engine) = 0;
};

/// Receives the packet lifecycle: injection (initial configuration or
/// adversary), every per-hop transmission, and absorption.  Packets are
/// identified by creation ordinal (protocol-independent, slot-reuse-proof),
/// exactly as in run traces.
class PacketEventSink {
 public:
  virtual ~PacketEventSink() = default;

  /// A packet entered the network: `initial` distinguishes the time-0
  /// initial configuration from adversary injections (t >= 1).
  virtual void on_inject(Time t, std::uint64_t ordinal, std::uint64_t tag,
                         RouteSpan route, bool initial) = 0;

  /// The buffer of `e` forwarded the packet; `hop` is the 0-based index of
  /// `e` in its route, `residence` the steps spent waiting in e's buffer.
  virtual void on_send(Time t, EdgeId e, std::uint64_t ordinal,
                       std::size_t hop, Time residence) = 0;

  /// The packet completed its route; `latency` is end-to-end in steps.
  virtual void on_absorb(Time t, std::uint64_t ordinal, Time latency) = 0;
};

}  // namespace aqt
