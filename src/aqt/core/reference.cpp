#include "aqt/core/reference.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {

ReferenceSimulator::ReferenceSimulator(const Graph& graph,
                                       std::string protocol_name)
    : graph_(graph),
      protocol_(std::move(protocol_name)),
      queues_(graph.edge_count()) {
  const bool known =
      protocol_ == "FIFO" || protocol_ == "LIFO" || protocol_ == "LIS" ||
      protocol_ == "NIS" || protocol_ == "FTG" || protocol_ == "NTG" ||
      protocol_ == "FFS" || protocol_ == "NTS";
  AQT_REQUIRE(known, "reference simulator does not model " << protocol_);
}

void ReferenceSimulator::add_initial_packet(Route route, std::uint64_t tag) {
  AQT_REQUIRE(now_ == 0, "initial packets only before stepping");
  AQT_REQUIRE(graph_.is_simple_path(route), "invalid initial route");
  RefPacket p;
  p.route = std::move(route);
  p.inject_time = 0;
  p.arrival_time = 0;
  p.arrival_order = arrivals_++;
  p.ordinal = injected_++;
  p.tag = tag;
  const EdgeId e = p.route[0];
  queues_[e].push_back(std::move(p));
}

std::size_t ReferenceSimulator::pick(
    const std::vector<RefPacket>& queue) const {
  AQT_CHECK(!queue.empty(), "pick on empty queue");
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue.size(); ++i) {
    const RefPacket& a = queue[i];
    const RefPacket& b = queue[best];
    bool better = false;
    if (protocol_ == "FIFO") {
      better = a.arrival_order < b.arrival_order;
    } else if (protocol_ == "LIFO") {
      better = a.arrival_order > b.arrival_order;
    } else if (protocol_ == "LIS") {
      better = a.inject_time < b.inject_time ||
               (a.inject_time == b.inject_time &&
                a.arrival_order < b.arrival_order);
    } else if (protocol_ == "NIS") {
      better = a.inject_time > b.inject_time ||
               (a.inject_time == b.inject_time &&
                a.arrival_order > b.arrival_order);
    } else if (protocol_ == "FTG") {
      const auto ra = a.route.size() - a.hop;
      const auto rb = b.route.size() - b.hop;
      better = ra > rb || (ra == rb && a.arrival_order < b.arrival_order);
    } else if (protocol_ == "NTG") {
      const auto ra = a.route.size() - a.hop;
      const auto rb = b.route.size() - b.hop;
      better = ra < rb || (ra == rb && a.arrival_order < b.arrival_order);
    } else if (protocol_ == "FFS") {
      better = a.hop > b.hop ||
               (a.hop == b.hop && a.arrival_order < b.arrival_order);
    } else if (protocol_ == "NTS") {
      better = a.hop < b.hop ||
               (a.hop == b.hop && a.arrival_order < b.arrival_order);
    }
    if (better) best = i;
  }
  return best;
}

std::vector<std::size_t> ReferenceSimulator::order(
    const std::vector<RefPacket>& queue) const {
  std::vector<RefPacket> copy = queue;
  std::vector<std::size_t> result;
  // Map copies back to original indices by arrival_order (unique).
  while (!copy.empty()) {
    const std::size_t i = pick(copy);
    for (std::size_t j = 0; j < queue.size(); ++j)
      if (queue[j].arrival_order == copy[i].arrival_order) {
        result.push_back(j);
        break;
      }
    copy.erase(copy.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return result;
}

void ReferenceSimulator::step(const std::vector<Injection>& injections,
                              const std::vector<RefReroute>& reroutes) {
  ++now_;

  // Substep 1: every nonempty buffer forwards the protocol's choice.
  std::vector<RefPacket> in_transit;
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    auto& q = queues_[e];
    if (q.empty()) continue;
    const std::size_t i = pick(q);
    in_transit.push_back(std::move(q[i]));
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
  }

  // Substep 2a: deliveries (absorb or advance), in sending-edge order.
  for (RefPacket& p : in_transit) {
    ++p.hop;
    if (p.hop == p.route.size()) {
      ++absorbed_;
      continue;
    }
    p.arrival_time = now_;
    p.arrival_order = arrivals_++;
    const EdgeId next = p.route[p.hop];
    queues_[next].push_back(std::move(p));
  }

  // Substep 2b: reroutes (suffix replacement), then injections.
  for (const RefReroute& rr : reroutes) {
    bool found = false;
    for (auto& q : queues_) {
      for (RefPacket& p : q) {
        if (p.ordinal != rr.ordinal) continue;
        Route updated(p.route.begin(),
                      p.route.begin() +
                          static_cast<std::ptrdiff_t>(p.hop) + 1);
        updated.insert(updated.end(), rr.new_suffix.begin(),
                       rr.new_suffix.end());
        AQT_REQUIRE(graph_.is_simple_path(updated),
                    "reference reroute produces invalid route");
        p.route = std::move(updated);
        found = true;
        break;
      }
      if (found) break;
    }
    AQT_REQUIRE(found, "reference reroute of unknown/absorbed packet "
                           << rr.ordinal);
  }
  for (const Injection& inj : injections) {
    AQT_REQUIRE(graph_.is_simple_path(inj.route), "invalid injected route");
    RefPacket p;
    p.route = inj.route;
    p.inject_time = now_;
    p.arrival_time = now_;
    p.arrival_order = arrivals_++;
    p.ordinal = injected_++;
    p.tag = inj.tag;
    queues_[p.route[0]].push_back(std::move(p));
  }
}

ReferenceSnapshot ReferenceSimulator::snapshot() const {
  ReferenceSnapshot snap;
  snap.now = now_;
  snap.injected = injected_;
  snap.absorbed = absorbed_;
  snap.queue_tags.resize(queues_.size());
  for (std::size_t e = 0; e < queues_.size(); ++e) {
    for (const std::size_t i : order(queues_[e]))
      snap.queue_tags[e].push_back(queues_[e][i].tag);
  }
  return snap;
}

}  // namespace aqt
