// Precompiled adversary schedules: flat per-step injection spans.
//
// Polling an adversary costs a virtual call per step plus, for every
// injection, a heap-allocated route pushed into AdversaryStep — by far the
// dominant share of step wall time in the committed perf baseline.  For
// *oblivious* adversaries (Adversary::is_oblivious — output independent of
// engine state) none of that work needs to happen inside the step: the
// engine polls the adversary for a whole block of future steps up front,
// interning every injected route into its RouteTable and flattening the
// work into the arrays below.  Executing a step then means walking two
// contiguous spans — no virtual dispatch, no allocation, no route copy.
//
// The schedule is blockwise (Engine::run recompiles every kBlockSteps), so
// memory stays O(block injections) regardless of run length, and the arrays
// are recycled between blocks.  `finished_before` snapshots the adversary's
// finished() answer as it was *at that point of the poll sequence*, because
// polling a stateful adversary (stream pacers, sequence stages) through the
// whole block advances its internal clock past the steps still waiting to
// execute — the stop-when-finished decision must use the compile-time
// answer to match the polled path step for step.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// One precompiled injection: an interned route plus its tag.
struct CompiledInjection {
  RouteRef route;
  std::uint64_t tag = 0;
};

/// A block of lowered adversary steps.  Built by Engine::run's block
/// compiler; consumed by the engine's inject substep.
class CompiledSchedule {
 public:
  /// Steps compiled per block.  Large enough to amortize the per-block
  /// bookkeeping to noise, small enough that a block's injections stay
  /// cache-resident and memory is bounded on unbounded runs.
  static constexpr Time kBlockSteps = 4096;

  /// Read-only view of one compiled step.
  struct StepView {
    std::span<const CompiledInjection> injections;
    std::span<const Reroute> reroutes;
    bool finished_before = false;  ///< finished() as polled before this step.
  };

  /// Discards the previous block; subsequent begin_step calls describe
  /// steps `first`, `first + 1`, ...  Capacity is retained.
  void reset(Time first);

  /// Opens the next step of the block.  `finished_before` is the
  /// adversary's finished() answer polled immediately before its step().
  void begin_step(bool finished_before);

  /// Appends work to the currently open step.
  void add_injection(RouteRef route, std::uint64_t tag) {
    injections_.push_back(CompiledInjection{route, tag});
    steps_.back().inj_end = static_cast<std::uint32_t>(injections_.size());
  }
  void add_reroute(Reroute reroute) {
    reroutes_.push_back(std::move(reroute));
    steps_.back().rr_end = static_cast<std::uint32_t>(reroutes_.size());
  }

  /// True when step `t` is inside the compiled block.
  [[nodiscard]] bool covers(Time t) const {
    return t >= first_ && t < first_ + static_cast<Time>(steps_.size());
  }

  [[nodiscard]] StepView step(Time t) const;

  [[nodiscard]] Time first_step() const { return first_; }
  [[nodiscard]] Time step_count() const {
    return static_cast<Time>(steps_.size());
  }
  [[nodiscard]] std::size_t injection_count() const {
    return injections_.size();
  }

 private:
  struct StepSpan {
    std::uint32_t inj_begin = 0;
    std::uint32_t inj_end = 0;
    std::uint32_t rr_begin = 0;
    std::uint32_t rr_end = 0;
    bool finished_before = false;
  };

  Time first_ = 0;
  std::vector<StepSpan> steps_;
  std::vector<CompiledInjection> injections_;
  std::vector<Reroute> reroutes_;
};

}  // namespace aqt
