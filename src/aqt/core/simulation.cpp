#include "aqt/core/simulation.hpp"

#include "aqt/util/check.hpp"

namespace aqt {

Simulation::Simulation(Graph graph, std::unique_ptr<Protocol> protocol,
                       EngineConfig config)
    : graph_(std::move(graph)), protocol_(std::move(protocol)) {
  AQT_REQUIRE(protocol_ != nullptr, "null protocol");
  engine_ = std::make_unique<Engine>(graph_, *protocol_, config);
}

Simulation::Simulation(Graph graph, const std::string& protocol_name,
                       EngineConfig config)
    : Simulation(std::move(graph), make_protocol(protocol_name), config) {}

void Simulation::add_initial_queue(const Route& route, std::size_t count,
                                   std::uint64_t tag) {
  for (std::size_t i = 0; i < count; ++i)
    engine_->add_initial_packet(route, tag);
}

void Simulation::set_adversary(std::unique_ptr<Adversary> adversary) {
  adversary_ = std::move(adversary);
}

void Simulation::run_for(Time steps) {
  for (Time i = 0; i < steps; ++i) engine_->step(adversary_.get());
}

void Simulation::run_until(const std::function<bool(const Engine&)>& stop,
                           Time cap) {
  for (Time i = 0; i < cap; ++i) {
    if (adversary_ && adversary_->finished(engine_->now())) break;
    if (stop && stop(*engine_)) break;
    engine_->step(adversary_.get());
  }
}

RunSummary Simulation::summary() const {
  RunSummary s;
  s.steps = engine_->now();
  s.injected = engine_->total_injected();
  s.absorbed = engine_->total_absorbed();
  s.in_flight = engine_->packets_in_flight();
  s.max_queue = engine_->metrics().max_queue_global();
  s.max_residence = engine_->metrics().max_residence_global();
  s.max_latency = engine_->metrics().max_latency();
  s.mean_latency = engine_->metrics().mean_latency();
  if (engine_->metrics().latency_histogram().count() > 0)
    s.p99_latency = engine_->metrics().latency_histogram().quantile(0.99);
  return s;
}

}  // namespace aqt
