// Per-edge packet buffer ordered by protocol priority.
//
// The buffer is an ordered set of (k1, k2, arrival_seq, packet) entries;
// the minimum entry is the packet the protocol forwards next.  All protocols
// in this library assign keys at arrival only, so set semantics suffice and
// every operation is O(log n) with deterministic total order.
#pragma once

#include <set>

#include "aqt/core/protocol.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// One buffered packet with its scheduling key.
struct BufferEntry {
  std::int64_t k1;
  std::int64_t k2;
  std::uint64_t seq;
  PacketId packet;

  friend bool operator<(const BufferEntry& a, const BufferEntry& b) {
    if (a.k1 != b.k1) return a.k1 < b.k1;
    if (a.k2 != b.k2) return a.k2 < b.k2;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.packet < b.packet;
  }
};

/// The queue at the tail of one edge.
class Buffer {
 public:
  using const_iterator = std::set<BufferEntry>::const_iterator;

  void push(const BufferEntry& e) { entries_.insert(e); }

  /// Removes and returns the highest-priority (minimum-key) entry.
  BufferEntry pop_min();

  /// Removes the entry for `packet`; O(n) scan, used only by rare
  /// operations (never on the hot path).
  bool erase_packet(PacketId packet);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  [[nodiscard]] const BufferEntry& front() const;

 private:
  std::set<BufferEntry> entries_;
};

}  // namespace aqt
