// Per-edge packet buffer ordered by protocol priority.
//
// The buffer is a binary min-heap of (k1, k2, arrival_seq, packet) entries
// over the strict total order below; the minimum entry is the packet the
// protocol forwards next.  All protocols in this library assign keys at
// arrival only, so pop-the-minimum semantics suffice — and because the
// order is total (packet id breaks every tie), the pop sequence is
// *identical* to the former ordered-set representation for any interleaving
// of pushes and pops.  What changes is the cost model: entries live in one
// flat vector whose capacity is recycled across steps (no per-entry node
// allocation), push/pop are O(log n) with contiguous memory traffic, and
// peeking the minimum is O(1).
//
// Iteration (begin/end) walks the heap array, i.e. in *heap order*, not key
// order.  The only iterating consumers — the invariant auditor, the state
// dumper, and tests — are order-insensitive or sort what they collect;
// heap order is still deterministic (a pure function of the operation
// sequence), so dumps and audits stay replayable.
#pragma once

#include <vector>

#include "aqt/core/protocol.hpp"
#include "aqt/core/types.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

/// One buffered packet with its scheduling key.
struct BufferEntry {
  std::int64_t k1;
  std::int64_t k2;
  std::uint64_t seq;
  PacketId packet;

  friend bool operator<(const BufferEntry& a, const BufferEntry& b) {
    if (a.k1 != b.k1) return a.k1 < b.k1;
    if (a.k2 != b.k2) return a.k2 < b.k2;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.packet < b.packet;
  }
};

/// The queue at the tail of one edge.
class Buffer {
 public:
  using const_iterator = std::vector<BufferEntry>::const_iterator;

  void push(const BufferEntry& e) {
    entries_.push_back(e);
    sift_up(entries_.size() - 1);
  }

  /// Removes and returns the highest-priority (minimum-key) entry.
  BufferEntry pop_min() {
    AQT_CHECK(!entries_.empty(), "pop_min on empty buffer");
    const BufferEntry e = entries_.front();
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    return e;
  }

  /// Removes the entry for `packet`; O(n) scan, used only by rare
  /// operations (never on the hot path).
  bool erase_packet(PacketId packet);

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Heap-order iteration (deterministic, but not key-sorted).
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  /// Key-sorted copy of the entries — the order pop_min would serve them.
  /// O(n log n); for order-sensitive cold paths (dumps, snapshots, the LPS
  /// adversary's whole-buffer reroutes), never the step loop.
  [[nodiscard]] std::vector<BufferEntry> ordered_entries() const;

  /// The minimum-key entry (what pop_min would return).
  [[nodiscard]] const BufferEntry& front() const;

  /// The maximum-key entry — the last the protocol would serve.  O(n) scan;
  /// test/diagnostic use only.
  [[nodiscard]] const BufferEntry& max_entry() const;

 private:
  // Inline with push/pop_min above: both run for every packet-hop of every
  // step, and the common case (one- or two-entry heap) collapses to a
  // couple of compares when the compiler can see the whole loop.
  void sift_up(std::size_t i) {
    BufferEntry e = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(e < entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }
  void sift_down(std::size_t i) {
    const std::size_t n = entries_.size();
    BufferEntry e = entries_[i];
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && entries_[child + 1] < entries_[child]) ++child;
      if (!(entries_[child] < e)) break;
      entries_[i] = entries_[child];
      i = child;
    }
    entries_[i] = e;
  }

  std::vector<BufferEntry> entries_;  ///< Binary min-heap.
};

}  // namespace aqt
