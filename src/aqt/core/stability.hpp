// Growth classification of queue-size series.
//
// "Stable" in adversarial queuing theory means buffer sizes stay bounded for
// all time.  A finite simulation can only estimate: we classify a series of
// occupancy samples (or of per-iteration peaks) by comparing late-window
// statistics against early-window statistics and by fitting a growth factor
// to successive peaks.  The instability experiments additionally have the
// paper's *predicted* per-iteration factor to compare against.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/metrics.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

enum class GrowthVerdict {
  kBounded,   ///< Late samples no larger than early samples (within slack).
  kGrowing,   ///< Clear monotone increase across windows.
  kUndecided  ///< Too little data or mixed signal.
};

const char* to_string(GrowthVerdict v);

struct GrowthReport {
  GrowthVerdict verdict = GrowthVerdict::kUndecided;
  double early_mean = 0.0;   ///< Mean of the first third of samples.
  double late_mean = 0.0;    ///< Mean of the last third of samples.
  double ratio = 0.0;        ///< late_mean / max(early_mean, 1).
};

/// Classifies a series of occupancy samples.  `slack` is the multiplicative
/// ratio above which the series counts as growing (default 2x).
GrowthReport classify_growth(const std::vector<std::uint64_t>& samples,
                             double slack = 2.0);

/// Convenience overload on the engine's subsampled series (uses in_flight).
GrowthReport classify_growth(const std::vector<SeriesPoint>& series,
                             double slack = 2.0);

/// Geometric-mean growth factor of successive peaks p_{k+1}/p_k; the
/// instability construction predicts a factor > 1 per outer iteration.
double geometric_growth_factor(const std::vector<std::uint64_t>& peaks);

}  // namespace aqt
