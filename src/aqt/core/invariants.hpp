// Step-level machine-checked invariants of the synchronous engine.
//
// The paper's theorems are statements about invariants — greedy
// work-conservation (§2), FIFO's structural time-priority property
// (Definition 4.2), route simplicity (§2) — so the simulator's evidence is
// only as good as those invariants actually holding in code.  The
// InvariantAuditor re-derives them from observable state after every step
// when EngineConfig::audit_invariants is on:
//
//   * packet conservation    -- injected = absorbed + in-flight, and the
//                               buffers jointly hold exactly the live set;
//   * active-set consistency -- the engine's active edge set is exactly the
//                               set of nonempty buffers;
//   * time-priority order    -- within each buffer, arrival sequence
//                               numbers are consistent with arrival times
//                               and with the packets' own records (the
//                               structural property engine.hpp promises);
//   * route simplicity       -- every live packet's full effective route is
//                               a simple directed path of the graph;
//   * work conservation      -- every buffer that was nonempty at the start
//                               of the step forwarded exactly one packet
//                               over exactly its own edge.
//
// A violation is a simulator bug by definition, so it reports through
// AQT_CHECK (abort) with a dump_state() snapshot attached — the same
// tripwire discipline as the rest of the engine, but covering whole-state
// properties no local assertion can see.  The auditor reads only the
// engine's public API; it keeps reusable scratch so a clean audit performs
// no per-step allocation in steady state.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "aqt/core/types.hpp"

namespace aqt {

class Engine;
struct Packet;

/// Whole-state invariant checker driven by the engine around each step.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(const Engine& engine);

  /// Snapshots the pre-step state (active edges, conservation counters).
  /// The engine calls this at the top of step(), before any send.
  void begin_step();

  /// Verifies every invariant against the post-step state.  `sent` holds
  /// the packet forwarded by each buffer this step, in sending-edge order
  /// (ids of absorbed packets are dead by now; ids may even have been
  /// recycled by a same-step injection).  Aborts via AQT_CHECK on the
  /// first violation, with a state dump in the diagnostic.
  void end_step(const std::vector<PacketId>& sent);

  /// Steps fully audited so far.
  [[nodiscard]] std::uint64_t steps_audited() const { return steps_audited_; }

 private:
  /// Merged single pass over all buffers: active-set consistency, entry
  /// sanity, time-priority order, and route simplicity of every buffered
  /// (== every live) packet.
  void scan_buffers();
  void check_route_simple(PacketId id, const Packet& p);
  void check_packet_conservation() const;
  void check_work_conservation(const std::vector<PacketId>& sent) const;

  const Engine& engine_;

  // Pre-step snapshot (begin_step).
  std::vector<EdgeId> pre_active_;  ///< Sorted: copied from the active set.
  std::uint64_t pre_injected_ = 0;
  std::uint64_t pre_absorbed_ = 0;
  std::uint64_t pre_live_ = 0;
  bool armed_ = false;

  std::uint64_t steps_audited_ = 0;
  std::uint64_t entries_seen_ = 0;  ///< Buffer entries in the current audit.

  // Reusable scratch (no steady-state allocation).
  std::vector<std::pair<std::uint64_t, Time>> seq_scratch_;  ///< (seq, arrival)
  std::vector<std::uint32_t> node_stamp_;  ///< Visited marks, epoch-tagged.
  std::uint32_t stamp_epoch_ = 0;
};

/// Test-only corruption hooks.  Each method damages exactly one invariant
/// through the engine's private state, bypassing all API validation — the
/// only honest way to prove the auditor catches real corruption, since the
/// public API is designed to make these states unreachable.  Never call
/// outside tests.
struct EngineTamperer {
  /// Inflates the absorbed counter: breaks packet conservation.
  static void phantom_absorption(Engine& engine);
  /// Appends an arbitrary disconnected edge to a live packet's route:
  /// breaks route simplicity (a non-simple route smuggled past validation).
  static void make_route_nonsimple(Engine& engine, PacketId id);
  /// Removes an edge from the active set while its buffer stays nonempty:
  /// breaks active-set consistency (and silently idles a nonempty buffer —
  /// the exact failure work-conservation proofs assume away).
  static void hide_active(Engine& engine, EdgeId e);
  /// Rewrites the last-served entry of a buffer with a forged sequence
  /// number (one that stays buffered across the next step):
  /// breaks the time-priority/sequence consistency invariant.
  static void scramble_buffer_seq(Engine& engine, EdgeId e);
};

}  // namespace aqt
