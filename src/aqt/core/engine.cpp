#include "aqt/core/engine.hpp"

#include <algorithm>

#include "aqt/core/invariants.hpp"
#include "aqt/core/obs_sink.hpp"
#include "aqt/core/trace_sink.hpp"
#include "aqt/util/check.hpp"

namespace {

/// RAII phase bracket: near-zero when the sink is null (one branch at each
/// end), and exception-safe so a throwing adversary cannot leave a phase
/// open.
class PhaseScope {
 public:
  PhaseScope(aqt::StepPhaseSink* sink, aqt::StepPhase phase)
      : sink_(sink), phase_(phase) {
    if (sink_ != nullptr) sink_->begin_phase(phase_);
  }
  ~PhaseScope() {
    if (sink_ != nullptr) sink_->end_phase(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  aqt::StepPhaseSink* sink_;
  aqt::StepPhase phase_;
};

}  // namespace

namespace aqt {

Engine::Engine(const Graph& graph, const Protocol& protocol,
               EngineConfig config)
    : graph_(graph),
      protocol_(protocol),
      config_(config),
      buffers_(graph.edge_count()),
      metrics_(graph.edge_count()) {
  // Fold the deprecated per-sink fields into the EngineSinks aggregate so
  // the step loop only ever consults config_.sinks.
  if (config_.sinks.trace == nullptr) config_.sinks.trace = config_.record_trace;
  if (config_.sinks.profile == nullptr)
    config_.sinks.profile = config_.profile;
  if (config_.sinks.events == nullptr)
    config_.sinks.events = config_.record_events;
  if (config_.audit_rates) audit_.emplace(graph.edge_count());
  if (config_.audit_invariants)
    invariants_ = std::make_unique<InvariantAuditor>(*this);
}

Engine::~Engine() = default;

PacketId Engine::add_initial_packet(Route route, std::uint64_t tag) {
  AQT_REQUIRE(!stepping_started_,
              "initial packets must be added before the first step");
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(route),
                "initial packet route is not a simple path");
  }
  const PacketId id = arena_.create(std::move(route), /*inject_time=*/0, tag);
  enqueue(id, /*t=*/0);
  if (config_.sinks.trace)
    config_.sinks.trace->record_initial(arena_[id].ordinal, tag,
                                         arena_[id].route);
  if (config_.sinks.events)
    config_.sinks.events->on_inject(0, arena_[id].ordinal, tag,
                                     arena_[id].route, /*initial=*/true);
  // The initial configuration is part of the observable state at time 0.
  const EdgeId e = arena_[id].route[0];
  metrics_.observe_queue(e, buffers_[e].size());
  return id;
}

const Buffer& Engine::buffer(EdgeId e) const {
  AQT_REQUIRE(e < buffers_.size(), "edge id out of range: " << e);
  return buffers_[e];
}

std::size_t Engine::queue_size(EdgeId e) const { return buffer(e).size(); }

std::uint64_t Engine::max_queue_now() const {
  std::uint64_t best = 0;
  for (EdgeId e : active_)
    best = std::max(best, static_cast<std::uint64_t>(buffers_[e].size()));
  return best;
}

void Engine::enqueue(PacketId id, Time t) {
  Packet& p = arena_[id];
  AQT_CHECK(p.hop < p.route.size(), "enqueue of finished packet");
  const EdgeId e = p.route[p.hop];
  p.arrival_time = t;
  p.arrival_seq = seq_++;
  const PriorityKey k = protocol_.key(p, t, p.arrival_seq);
  buffers_[e].push(BufferEntry{k.k1, k.k2, p.arrival_seq, id});
  active_.insert(e);
}

void Engine::absorb(PacketId id, Time t) {
  const Packet& p = arena_[id];
  metrics_.observe_absorb(t - p.inject_time);
  if (config_.sinks.trace) config_.sinks.trace->record_absorb(p.ordinal);
  if (config_.sinks.events)
    config_.sinks.events->on_absorb(t, p.ordinal, t - p.inject_time);
  // Initial-configuration packets (inject_time 0) are not adversary
  // injections; rate constraints (and Observation 4.4) treat them
  // separately, so the audit records only packets injected at steps >= 1.
  if (audit_ && p.inject_time > 0) audit_->add(p.route, p.inject_time);
  arena_.destroy(id);
  ++absorbed_;
}

void Engine::apply_reroute(const Reroute& rr) {
  AQT_REQUIRE(arena_.is_live(rr.packet),
              "reroute of dead packet " << rr.packet);
  AQT_REQUIRE(protocol_.is_historic(),
              "rerouting requires a historic protocol (Lemma 3.3); "
                  << protocol_.name() << " is not");
  Packet& p = arena_[rr.packet];
  AQT_CHECK(p.hop < p.route.size(), "reroute of finished packet");
  Route updated(p.route.begin(),
                p.route.begin() + static_cast<std::ptrdiff_t>(p.hop) + 1);
  updated.insert(updated.end(), rr.new_suffix.begin(), rr.new_suffix.end());
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(updated),
                "rerouted route is not a simple path (packet " << rr.packet
                                                               << ")");
  }
  // The packet's buffer position is untouched: historic protocols' keys do
  // not depend on the route beyond the next edge, so no re-keying is needed.
  p.route = std::move(updated);
}

void Engine::apply_injection(const Injection& inj, Time t) {
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(inj.route),
                "injected route is not a simple path");
  }
  const PacketId id = arena_.create(inj.route, t, inj.tag);
  enqueue(id, t);
  if (config_.sinks.trace)
    config_.sinks.trace->record_inject(arena_[id].ordinal, inj.tag,
                                        arena_[id].route);
  if (config_.sinks.events)
    config_.sinks.events->on_inject(t, arena_[id].ordinal, inj.tag,
                                     arena_[id].route, /*initial=*/false);
}

void Engine::step(Adversary* adversary) {
  AQT_REQUIRE(!audit_finalized_, "stepping after finalize_audit()");
  stepping_started_ = true;
  if (invariants_) invariants_->begin_step();
  const Time t = ++now_;
  if (config_.sinks.profile) config_.sinks.profile->begin_step(t);
  if (config_.sinks.trace) config_.sinks.trace->begin_step(t);

  // Substep 1: every nonempty buffer sends its highest-priority packet.
  {
    PhaseScope phase(config_.sinks.profile, StepPhase::kTransmit);
    sent_.clear();
    for (auto it = active_.begin(); it != active_.end();) {
      const EdgeId e = *it;
      Buffer& buf = buffers_[e];
      const BufferEntry entry = buf.pop_min();
      sent_.push_back(entry.packet);
      if (config_.sinks.trace)
        config_.sinks.trace->record_send(e, arena_[entry.packet].ordinal);
      if (config_.sinks.events) {
        const Packet& p = arena_[entry.packet];
        config_.sinks.events->on_send(t, e, p.ordinal, p.hop,
                                       t - p.arrival_time);
      }
      metrics_.observe_send(e, t - arena_[entry.packet].arrival_time);
      if (buf.empty()) {
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Substep 2a: deliveries, in sending-edge order (sent_ is already ordered
  // by edge id because active_ iterates in increasing order).
  {
    PhaseScope phase(config_.sinks.profile, StepPhase::kAbsorb);
    for (const PacketId id : sent_) {
      Packet& p = arena_[id];
      ++p.hop;
      if (p.hop == p.route.size()) {
        absorb(id, t);
      } else {
        enqueue(id, t);
      }
    }
  }

  // Substep 2b: the adversary observes the post-delivery state and issues
  // reroutes (applied first) and injections.
  if (adversary != nullptr) {
    PhaseScope phase(config_.sinks.profile, StepPhase::kInject);
    adv_step_.injections.clear();
    adv_step_.reroutes.clear();
    adversary->step(t, *this, adv_step_);
    for (const Reroute& rr : adv_step_.reroutes) {
      apply_reroute(rr);
      if (config_.sinks.trace)
        config_.sinks.trace->record_reroute(arena_[rr.packet].ordinal,
                                             rr.new_suffix);
    }
    for (const Injection& inj : adv_step_.injections)
      apply_injection(inj, t);
  }

  // End-of-step metrics.
  {
    PhaseScope phase(config_.sinks.profile, StepPhase::kRecord);
    for (const EdgeId e : active_)
      metrics_.observe_queue(e, buffers_[e].size());
    metrics_.observe_step(arena_.live_count());
    if (config_.sinks.trace)
      for (const EdgeId e : active_)
        config_.sinks.trace->record_queue_depth(e, buffers_[e].size());
    if (config_.series_stride > 0 && t % config_.series_stride == 0)
      metrics_.push_series(t, arena_.live_count(), max_queue_now());
  }

  if (invariants_) {
    PhaseScope phase(config_.sinks.profile, StepPhase::kAudit);
    invariants_->end_step(sent_);
  }
  if (config_.sinks.profile) config_.sinks.profile->end_step();
}

void Engine::run(Adversary* adversary, Time count) {
  for (Time i = 0; i < count; ++i) step(adversary);
}

Time Engine::drain(Time cap) {
  Time taken = 0;
  while (taken < cap && !active_.empty()) {
    step(nullptr);
    ++taken;
  }
  return taken;
}

const RateAudit& Engine::audit() const {
  AQT_REQUIRE(audit_.has_value(),
              "rate auditing disabled; set EngineConfig::audit_rates");
  return *audit_;
}

void Engine::finalize_audit() {
  AQT_REQUIRE(audit_.has_value(),
              "rate auditing disabled; set EngineConfig::audit_rates");
  AQT_REQUIRE(!audit_finalized_, "finalize_audit() called twice");
  audit_finalized_ = true;
  arena_.for_each_live([&](PacketId, const Packet& p) {
    if (p.inject_time > 0) audit_->add(p.route, p.inject_time);
  });
}

}  // namespace aqt
