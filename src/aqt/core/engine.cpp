#include "aqt/core/engine.hpp"

#include <algorithm>
#include <bit>

#include "aqt/core/invariants.hpp"
#include "aqt/core/obs_sink.hpp"
#include "aqt/core/trace_sink.hpp"
#include "aqt/util/check.hpp"

namespace {

/// RAII phase bracket: near-zero when the sink is null (one branch at each
/// end), and exception-safe so a throwing adversary cannot leave a phase
/// open.
class PhaseScope {
 public:
  PhaseScope(aqt::StepPhaseSink* sink, aqt::StepPhase phase)
      : sink_(sink), phase_(phase) {
    if (sink_ != nullptr) sink_->begin_phase(phase_);
  }
  ~PhaseScope() {
    if (sink_ != nullptr) sink_->end_phase(phase_);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  aqt::StepPhaseSink* sink_;
  aqt::StepPhase phase_;
};

}  // namespace

namespace aqt {

Engine::Engine(const Graph& graph, const Protocol& protocol,
               EngineConfig config)
    : graph_(graph),
      protocol_(protocol),
      key_rule_(protocol.key_rule()),
      config_(config),
      buffers_(graph.edge_count()),
      active_words_((graph.edge_count() + 63) / 64, 0),
      metrics_(graph.edge_count()) {
  if (config_.audit_rates) audit_.emplace(graph.edge_count());
  if (config_.audit_invariants)
    invariants_ = std::make_unique<InvariantAuditor>(*this);
}

Engine::~Engine() = default;

void Engine::set_active_bit(EdgeId e) {
  std::uint64_t& w = active_words_[e >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (e & 63);
  if ((w & mask) == 0) {
    w |= mask;
    ++active_count_;
  }
}

void Engine::clear_active_bit(EdgeId e) {
  std::uint64_t& w = active_words_[e >> 6];
  const std::uint64_t mask = std::uint64_t{1} << (e & 63);
  if ((w & mask) != 0) {
    w &= ~mask;
    --active_count_;
  }
}

bool Engine::test_active_bit(EdgeId e) const {
  return (active_words_[e >> 6] >> (e & 63)) & 1;
}

template <typename Fn>
void Engine::for_each_active(Fn&& fn) const {
  for (std::size_t wi = 0; wi < active_words_.size(); ++wi) {
    std::uint64_t w = active_words_[wi];
    while (w != 0) {
      const int b = std::countr_zero(w);
      w &= w - 1;
      fn(static_cast<EdgeId>((wi << 6) + static_cast<std::size_t>(b)));
    }
  }
}

PacketId Engine::add_initial_packet(const Route& route, std::uint64_t tag) {
  AQT_REQUIRE(!stepping_started_,
              "initial packets must be added before the first step");
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(route),
                "initial packet route is not a simple path");
  }
  const PacketId id =
      arena_.create(routes_.intern(route), /*inject_time=*/0, tag);
  enqueue(id, /*t=*/0);
  const std::uint64_t ordinal = arena_.meta(id).ordinal;
  if (config_.sinks.trace)
    config_.sinks.trace->record_initial(ordinal, tag, arena_[id].route);
  if (config_.sinks.events)
    config_.sinks.events->on_inject(0, ordinal, tag, arena_[id].route,
                                    /*initial=*/true);
  // The initial configuration is part of the observable state at time 0.
  const EdgeId e = arena_[id].route[0];
  metrics_.observe_queue(e, buffers_[e].size());
  return id;
}

const Buffer& Engine::buffer(EdgeId e) const {
  AQT_REQUIRE(e < buffers_.size(), "edge id out of range: " << e);
  return buffers_[e];
}

std::size_t Engine::queue_size(EdgeId e) const { return buffer(e).size(); }

std::uint64_t Engine::max_queue_now() const {
  std::uint64_t best = 0;
  for_each_active([&](EdgeId e) {
    best = std::max(best, static_cast<std::uint64_t>(buffers_[e].size()));
  });
  return best;
}

std::vector<EdgeId> Engine::active_edges() const {
  std::vector<EdgeId> out;
  out.reserve(active_count_);
  for_each_active([&](EdgeId e) { out.push_back(e); });
  return out;
}

void Engine::enqueue(PacketId id, Time t) {
  Packet& p = arena_[id];
  AQT_CHECK(p.hop < p.route.size(), "enqueue of finished packet");
  const EdgeId e = p.route[p.hop];
  p.arrival_time = t;
  p.arrival_seq = seq_++;
  // The switch mirrors the closed-form formulas documented on KeyRule; any
  // protocol not covered (kCustom) pays the virtual dispatch.  Saving that
  // indirect call per enqueue is measurable because enqueue runs for every
  // hop of every packet.
  const auto seq = static_cast<std::int64_t>(p.arrival_seq);
  PriorityKey k;
  switch (key_rule_) {
    case KeyRule::kFifo:
      k = {seq, 0};
      break;
    case KeyRule::kLifo:
      k = {-seq, 0};
      break;
    case KeyRule::kLis:
      k = {p.inject_time, seq};
      break;
    case KeyRule::kNis:
      k = {-p.inject_time, -seq};
      break;
    case KeyRule::kFtg:
      k = {-static_cast<std::int64_t>(p.remaining()), seq};
      break;
    case KeyRule::kNtg:
      k = {static_cast<std::int64_t>(p.remaining()), seq};
      break;
    case KeyRule::kFfs:
      k = {-static_cast<std::int64_t>(p.traversed()), seq};
      break;
    case KeyRule::kNts:
      k = {static_cast<std::int64_t>(p.traversed()), seq};
      break;
    case KeyRule::kCustom:
      k = protocol_.key(p, t, p.arrival_seq);
      break;
  }
  buffers_[e].push(BufferEntry{k.k1, k.k2, p.arrival_seq, id});
  set_active_bit(e);
}

void Engine::absorb(PacketId id, Time t) {
  const Packet& p = arena_[id];
  metrics_.observe_absorb(t - p.inject_time);
  if (config_.sinks.trace != nullptr || config_.sinks.events != nullptr) {
    const std::uint64_t ordinal = arena_.meta(id).ordinal;
    if (config_.sinks.trace) config_.sinks.trace->record_absorb(ordinal);
    if (config_.sinks.events)
      config_.sinks.events->on_absorb(t, ordinal, t - p.inject_time);
  }
  // Initial-configuration packets (inject_time 0) are not adversary
  // injections; rate constraints (and Observation 4.4) treat them
  // separately, so the audit records only packets injected at steps >= 1.
  if (audit_ && p.inject_time > 0) audit_->add(p.route, p.inject_time);
  arena_.destroy(id);
  ++absorbed_;
}

void Engine::apply_reroute(const Reroute& rr) {
  AQT_REQUIRE(arena_.is_live(rr.packet),
              "reroute of dead packet " << rr.packet);
  AQT_REQUIRE(protocol_.is_historic(),
              "rerouting requires a historic protocol (Lemma 3.3); "
                  << protocol_.name() << " is not");
  Packet& p = arena_[rr.packet];
  AQT_CHECK(p.hop < p.route.size(), "reroute of finished packet");
  // Splice in place: traversed prefix (current edge included) + new suffix,
  // assembled in reusable scratch and interned copy-on-write — packets
  // sharing the old route are untouched, and no per-reroute Route is
  // allocated in steady state.
  splice_scratch_.assign(p.route.begin(),
                         p.route.begin() + static_cast<std::ptrdiff_t>(p.hop) +
                             1);
  splice_scratch_.insert(splice_scratch_.end(), rr.new_suffix.begin(),
                         rr.new_suffix.end());
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(splice_scratch_),
                "rerouted route is not a simple path (packet " << rr.packet
                                                               << ")");
  }
  // The packet's buffer position is untouched: historic protocols' keys do
  // not depend on the route beyond the next edge, so no re-keying is needed.
  p.route = routes_.intern(splice_scratch_);
}

void Engine::apply_injection(const Injection& inj, Time t) {
  if (config_.validate_routes) {
    AQT_REQUIRE(graph_.is_simple_path(inj.route),
                "injected route is not a simple path");
  }
  apply_injection_ref(routes_.intern(inj.route), inj.tag, t);
}

void Engine::apply_injection_ref(RouteRef route, std::uint64_t tag, Time t) {
  const PacketId id = arena_.create(route, t, tag);
  enqueue(id, t);
  if (config_.sinks.trace != nullptr || config_.sinks.events != nullptr) {
    const std::uint64_t ordinal = arena_.meta(id).ordinal;
    if (config_.sinks.trace)
      config_.sinks.trace->record_inject(ordinal, tag, route);
    if (config_.sinks.events)
      config_.sinks.events->on_inject(t, ordinal, tag, route,
                                      /*initial=*/false);
  }
}

template <typename InjectBody>
void Engine::step_body(bool has_inject, InjectBody&& inject_body) {
  AQT_REQUIRE(!audit_finalized_, "stepping after finalize_audit()");
  stepping_started_ = true;
  if (invariants_) invariants_->begin_step();
  const Time t = ++now_;
  // A sampling profiler opts out of per-phase brackets on most steps
  // (begin_step returns false); the mask keeps its call counts exact.
  StepPhaseSink* const prof = config_.sinks.profile;
  StepPhaseSink* const brackets =
      prof != nullptr && prof->begin_step(t) ? prof : nullptr;
  std::uint8_t phase_mask = 0;
  if (config_.sinks.trace) config_.sinks.trace->begin_step(t);

  // Substep 1: every nonempty buffer sends its highest-priority packet,
  // in ascending edge-id order (bitmap word scan).
  {
    PhaseScope phase(brackets, StepPhase::kTransmit);
    phase_mask |= 1u << static_cast<unsigned>(StepPhase::kTransmit);
    sent_.clear();
    const bool emit_send =
        config_.sinks.trace != nullptr || config_.sinks.events != nullptr;
    for (std::size_t wi = 0; wi < active_words_.size(); ++wi) {
      std::uint64_t w = active_words_[wi];
      while (w != 0) {
        const int b = std::countr_zero(w);
        w &= w - 1;
        const EdgeId e = static_cast<EdgeId>((wi << 6) +
                                             static_cast<std::size_t>(b));
        Buffer& buf = buffers_[e];
        const BufferEntry entry = buf.pop_min();
        sent_.push_back(entry.packet);
        if (emit_send) [[unlikely]] {
          const Packet& p = arena_[entry.packet];
          const std::uint64_t ordinal = arena_.meta(entry.packet).ordinal;
          if (config_.sinks.trace)
            config_.sinks.trace->record_send(e, ordinal);
          if (config_.sinks.events)
            config_.sinks.events->on_send(t, e, ordinal, p.hop,
                                          t - p.arrival_time);
        }
        if (buf.empty()) clear_active_bit(e);
      }
    }
  }

  // Substep 2a: deliveries, in sending-edge order (sent_ is already ordered
  // by edge id because the bitmap scan runs in increasing order).
  {
    PhaseScope phase(brackets, StepPhase::kAbsorb);
    phase_mask |= 1u << static_cast<unsigned>(StepPhase::kAbsorb);
    for (const PacketId id : sent_) {
      Packet& p = arena_[id];
      // The send that moved this packet is accounted here rather than in
      // the transmit loop: sent_ preserves ascending edge order, the
      // observed values are identical, and p's cache line is needed for
      // the hop advance anyway — the transmit loop stays pure buffer and
      // bitmap work.
      metrics_.observe_send(p.route[p.hop], t - p.arrival_time);
      ++p.hop;
      if (p.hop == p.route.size()) {
        absorb(id, t);
      } else {
        enqueue(id, t);
      }
    }
  }

  // Substep 2b: reroutes (applied first) and injections — polled from the
  // adversary or replayed from the compiled schedule.
  if (has_inject) {
    PhaseScope phase(brackets, StepPhase::kInject);
    phase_mask |= 1u << static_cast<unsigned>(StepPhase::kInject);
    inject_body(t);
  }

  // End-of-step metrics.
  {
    PhaseScope phase(brackets, StepPhase::kRecord);
    phase_mask |= 1u << static_cast<unsigned>(StepPhase::kRecord);
    for_each_active(
        [&](EdgeId e) { metrics_.observe_queue(e, buffers_[e].size()); });
    metrics_.observe_step(arena_.live_count());
    if (config_.sinks.trace)
      for_each_active([&](EdgeId e) {
        config_.sinks.trace->record_queue_depth(e, buffers_[e].size());
      });
    if (config_.series_stride > 0 && t % config_.series_stride == 0)
      metrics_.push_series(t, arena_.live_count(), max_queue_now());
    if (config_.sinks.samples != nullptr) [[unlikely]] {
      StepSample sample;
      sample.t = t;
      sample.in_flight = arena_.live_count();
      sample.injected_total = arena_.total_created();
      sample.absorbed_total = absorbed_;
      sample.active_edges = active_count_;
      sample.max_queue = max_queue_now();
      config_.sinks.samples->on_step(sample, *this);
    }
  }

  if (invariants_) {
    PhaseScope phase(brackets, StepPhase::kAudit);
    phase_mask |= 1u << static_cast<unsigned>(StepPhase::kAudit);
    invariants_->end_step(sent_);
  }
  if (prof)
    prof->end_step(brackets == nullptr ? phase_mask
                                       : static_cast<std::uint8_t>(0));
}

void Engine::step(Adversary* adversary) {
  step_body(adversary != nullptr, [&](Time t) {
    adv_step_.injections.clear();
    adv_step_.reroutes.clear();
    adversary->step(t, *this, adv_step_);
    for (const Reroute& rr : adv_step_.reroutes) {
      apply_reroute(rr);
      if (config_.sinks.trace)
        config_.sinks.trace->record_reroute(arena_.meta(rr.packet).ordinal,
                                            rr.new_suffix);
    }
    for (const Injection& inj : adv_step_.injections)
      apply_injection(inj, t);
  });
}

void Engine::step_compiled(const CompiledSchedule::StepView& view) {
  step_body(true, [&](Time t) {
    for (const Reroute& rr : view.reroutes) {
      apply_reroute(rr);
      if (config_.sinks.trace)
        config_.sinks.trace->record_reroute(arena_.meta(rr.packet).ordinal,
                                            rr.new_suffix);
    }
    for (const CompiledInjection& ci : view.injections)
      apply_injection_ref(ci.route, ci.tag, t);
  });
}

void Engine::compile_block(Adversary& adv, Time first, Time count) {
  schedule_.reset(first);
  for (Time t = first; t < first + count; ++t) {
    // finished() is polled *before* step(), exactly as the per-step loop
    // would; the answer is snapshotted because compiling the rest of the
    // block advances the adversary's internal clock past t.
    schedule_.begin_step(adv.finished(t));
    adv_step_.injections.clear();
    adv_step_.reroutes.clear();
    adv.step(t, *this, adv_step_);
    for (Reroute& rr : adv_step_.reroutes)
      schedule_.add_reroute(std::move(rr));
    for (const Injection& inj : adv_step_.injections) {
      if (config_.validate_routes) {
        AQT_REQUIRE(graph_.is_simple_path(inj.route),
                    "injected route is not a simple path");
      }
      schedule_.add_injection(routes_.intern(inj.route), inj.tag);
    }
  }
}

Time Engine::run(Adversary* adversary, Time count, bool stop_when_finished) {
  if (adversary == nullptr || !config_.compile_schedules ||
      !adversary->is_oblivious()) {
    Time taken = 0;
    for (; taken < count; ++taken) {
      if (stop_when_finished && adversary != nullptr &&
          adversary->finished(now_ + 1))
        break;
      step(adversary);
    }
    return taken;
  }
  // Compiled fast path: lower the adversary blockwise, then execute each
  // block without virtual calls or allocation inside the steps.
  Time taken = 0;
  while (taken < count) {
    const Time block =
        std::min<Time>(CompiledSchedule::kBlockSteps, count - taken);
    compile_block(*adversary, now_ + 1, block);
    for (Time i = 0; i < block; ++i) {
      const CompiledSchedule::StepView view = schedule_.step(now_ + 1);
      if (stop_when_finished && view.finished_before) return taken;
      step_compiled(view);
      ++taken;
    }
  }
  return taken;
}

Time Engine::drain(Time cap) {
  Time taken = 0;
  while (taken < cap && active_count_ > 0) {
    step(nullptr);
    ++taken;
  }
  return taken;
}

const RateAudit& Engine::audit() const {
  AQT_REQUIRE(audit_.has_value(),
              "rate auditing disabled; set EngineConfig::audit_rates");
  return *audit_;
}

void Engine::finalize_audit() {
  AQT_REQUIRE(audit_.has_value(),
              "rate auditing disabled; set EngineConfig::audit_rates");
  AQT_REQUIRE(!audit_finalized_, "finalize_audit() called twice");
  audit_finalized_ = true;
  arena_.for_each_live([&](PacketId, const Packet& p, const PacketMeta&) {
    if (p.inject_time > 0) audit_->add(p.route, p.inject_time);
  });
}

}  // namespace aqt
