// An independent, deliberately-naive reference implementation of the
// adversarial queuing model, used as a differential-testing oracle for the
// production Engine.
//
// This simulator is written directly from the paper's prose (§2) with
// different data structures and different control flow than Engine: each
// buffer is a plain vector in arrival order, and the protocol's choice is
// re-derived per step by a linear scan with longhand tie-breaking rules.
// If Engine and ReferenceSimulator ever disagree on observable state
// (queue contents per edge, absorption counts, packet positions), one of
// them has a bug.  Keep this file free of any Engine machinery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

/// Observable per-step state snapshot used for comparisons.
struct ReferenceSnapshot {
  Time now = 0;
  std::uint64_t injected = 0;
  std::uint64_t absorbed = 0;
  /// queue_tags[e] = the tags of packets waiting at edge e, in the order
  /// the protocol would forward them (front first).
  std::vector<std::vector<std::uint64_t>> queue_tags;
};

/// The oracle.  Supports every deterministic protocol in the zoo
/// (RANDOM is excluded: its coin flips are implementation-defined).
class ReferenceSimulator {
 public:
  ReferenceSimulator(const Graph& graph, std::string protocol_name);

  /// Adds an initial-configuration packet (time 0).
  void add_initial_packet(Route route, std::uint64_t tag = 0);

  /// Executes one step with explicit adversary work (already resolved;
  /// reroutes identify packets by creation ordinal).
  struct RefReroute {
    std::uint64_t ordinal;
    Route new_suffix;
  };
  void step(const std::vector<Injection>& injections,
            const std::vector<RefReroute>& reroutes);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] std::uint64_t injected() const { return injected_; }
  [[nodiscard]] std::uint64_t absorbed() const { return absorbed_; }
  [[nodiscard]] std::size_t queue_size(EdgeId e) const {
    return queues_[e].size();
  }

  /// Snapshot of the observable state (queues listed in forwarding order).
  [[nodiscard]] ReferenceSnapshot snapshot() const;

 private:
  struct RefPacket {
    Route route;
    std::size_t hop = 0;
    Time inject_time = 0;
    Time arrival_time = 0;
    std::uint64_t arrival_order = 0;  ///< Global arrival counter.
    std::uint64_t ordinal = 0;
    std::uint64_t tag = 0;
  };

  /// Index (within the buffer vector) of the packet the protocol forwards.
  [[nodiscard]] std::size_t pick(const std::vector<RefPacket>& queue) const;

  /// Forwarding order of a whole buffer (for snapshots): repeated pick().
  [[nodiscard]] std::vector<std::size_t> order(
      const std::vector<RefPacket>& queue) const;

  const Graph& graph_;
  std::string protocol_;
  std::vector<std::vector<RefPacket>> queues_;  ///< Arrival order.
  Time now_ = 0;
  std::uint64_t injected_ = 0;
  std::uint64_t absorbed_ = 0;
  std::uint64_t arrivals_ = 0;
};

}  // namespace aqt
