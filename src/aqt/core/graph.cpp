#include "aqt/core/graph.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "aqt/util/check.hpp"

namespace aqt {

NodeId Graph::add_node(std::string name) {
  AQT_REQUIRE(!name.empty(), "node name must be non-empty");
  AQT_REQUIRE(!node_by_name_.count(name), "duplicate node name: " << name);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node_by_name_.emplace(name, id);
  nodes_.push_back(std::move(name));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId Graph::add_edge(NodeId tail, NodeId head, std::string name) {
  AQT_REQUIRE(tail < nodes_.size() && head < nodes_.size(),
              "edge endpoints out of range");
  AQT_REQUIRE(tail != head, "self-loop edges are not allowed: " << name);
  AQT_REQUIRE(!name.empty(), "edge name must be non-empty");
  AQT_REQUIRE(!edge_by_name_.count(name), "duplicate edge name: " << name);
  const EdgeId id = static_cast<EdgeId>(edges_.size());
  edge_by_name_.emplace(name, id);
  edges_.push_back(Edge{tail, head, std::move(name)});
  out_[tail].push_back(id);
  in_[head].push_back(id);
  return id;
}

EdgeId Graph::add_edge(const std::string& tail_name,
                       const std::string& head_name, std::string edge_name) {
  const auto get_or_add = [&](const std::string& n) {
    if (auto v = find_node(n)) return *v;
    return add_node(n);
  };
  const NodeId t = get_or_add(tail_name);
  const NodeId h = get_or_add(head_name);
  return add_edge(t, h, std::move(edge_name));
}

const Graph::Edge& Graph::edge(EdgeId e) const {
  AQT_REQUIRE(e < edges_.size(), "edge id out of range: " << e);
  return edges_[e];
}

const std::string& Graph::node_name(NodeId v) const {
  AQT_REQUIRE(v < nodes_.size(), "node id out of range: " << v);
  return nodes_[v];
}

const std::vector<EdgeId>& Graph::out_edges(NodeId v) const {
  AQT_REQUIRE(v < nodes_.size(), "node id out of range: " << v);
  return out_[v];
}

const std::vector<EdgeId>& Graph::in_edges(NodeId v) const {
  AQT_REQUIRE(v < nodes_.size(), "node id out of range: " << v);
  return in_[v];
}

std::optional<NodeId> Graph::find_node(std::string_view name) const {
  auto it = node_by_name_.find(std::string(name));
  if (it == node_by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<EdgeId> Graph::find_edge(std::string_view name) const {
  auto it = edge_by_name_.find(std::string(name));
  if (it == edge_by_name_.end()) return std::nullopt;
  return it->second;
}

EdgeId Graph::edge_by_name(std::string_view name) const {
  const auto e = find_edge(name);
  AQT_REQUIRE(e.has_value(), "no edge named " << name);
  return *e;
}

bool Graph::is_path(const Route& route) const {
  if (route.empty()) return false;
  for (EdgeId e : route)
    if (e >= edges_.size()) return false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i)
    if (edges_[route[i]].head != edges_[route[i + 1]].tail) return false;
  return true;
}

bool Graph::is_simple_path(const Route& route) const {
  if (!is_path(route)) return false;
  std::unordered_set<NodeId> seen;
  seen.insert(edges_[route.front()].tail);
  for (EdgeId e : route) {
    if (!seen.insert(edges_[e].head).second) return false;
  }
  return true;
}

std::size_t Graph::max_in_degree() const {
  std::size_t best = 0;
  for (const auto& v : in_) best = std::max(best, v.size());
  return best;
}

std::string Graph::to_dot(const std::string& graph_name) const {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  rankdir=LR;\n";
  for (std::size_t v = 0; v < nodes_.size(); ++v)
    os << "  n" << v << " [label=\"" << nodes_[v] << "\"];\n";
  for (const auto& e : edges_)
    os << "  n" << e.tail << " -> n" << e.head << " [label=\"" << e.name
       << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace aqt
