#include "aqt/core/rate_check.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "aqt/util/check.hpp"

namespace aqt {

void RateAudit::add(RouteSpan route, Time t) {
  for (EdgeId e : route) add_edge(e, t);
}

void RateAudit::add_edge(EdgeId e, Time t) {
  AQT_REQUIRE(e < per_edge_.size(), "edge id out of range in audit: " << e);
  per_edge_[e].push_back(t);
  ++entries_;
}

std::string RateCheckResult::describe(const Graph& g) const {
  if (ok) return "feasible";
  std::ostringstream os;
  os << "edge "
     << (edge < g.edge_count() ? g.edge(edge).name : std::to_string(edge))
     << " carries " << count << " injections in [" << t1 << ", " << t2
     << "] but the budget is " << budget;
  return os.str();
}

RateCheckResult check_rate_r(const RateAudit& audit, const Rat& r) {
  const std::int64_t p = r.num();
  const std::int64_t q = r.den();
  AQT_REQUIRE(p >= 0, "negative rate");

  for (EdgeId e = 0; e < audit.edge_count(); ++e) {
    std::vector<Time> t = audit.times(e);
    if (t.empty()) continue;
    std::sort(t.begin(), t.end());

    if (p == 0) {
      // Budget is ceil(0 * L) = 0 on every interval; one packet violates.
      RateCheckResult res;
      res.ok = false;
      res.edge = e;
      res.t1 = res.t2 = t.front();
      res.count = 1;
      res.budget = 0;
      return res;
    }

    // With u_x = q*x - p*t_x (x = 1-based position in sorted order), the
    // interval [t_i, t_j] violates "count <= ceil(r * length)" iff
    // u_j - u_i >= p.  Scan once, keeping the minimum u_i seen so far.
    std::int64_t best_u = std::numeric_limits<std::int64_t>::max();
    std::size_t best_i = 0;
    for (std::size_t x = 0; x < t.size(); ++x) {
      const std::int64_t u = q * static_cast<std::int64_t>(x + 1) - p * t[x];
      if (best_u != std::numeric_limits<std::int64_t>::max() &&
          u - best_u >= p) {
        RateCheckResult res;
        res.ok = false;
        res.edge = e;
        res.t1 = t[best_i];
        res.t2 = t[x];
        res.count = static_cast<std::int64_t>(x - best_i + 1);
        res.budget = r.ceil_mul(res.t2 - res.t1 + 1);
        AQT_CHECK(res.count > res.budget, "rate witness inconsistent");
        return res;
      }
      if (u < best_u) {
        best_u = u;
        best_i = x;
      }
    }
  }
  return RateCheckResult{};
}

RateCheckResult check_window(const RateAudit& audit, std::int64_t w,
                             const Rat& r) {
  AQT_REQUIRE(w >= 1, "window must be >= 1");
  const std::int64_t budget = r.floor_mul(w);
  for (EdgeId e = 0; e < audit.edge_count(); ++e) {
    std::vector<Time> t = audit.times(e);
    if (t.empty()) continue;
    std::sort(t.begin(), t.end());
    std::size_t i = 0;
    for (std::size_t j = 0; j < t.size(); ++j) {
      while (t[j] - t[i] + 1 > w) ++i;
      const auto count = static_cast<std::int64_t>(j - i + 1);
      if (count > budget) {
        RateCheckResult res;
        res.ok = false;
        res.edge = e;
        res.t1 = t[i];
        res.t2 = t[j];
        res.count = count;
        res.budget = budget;
        return res;
      }
    }
  }
  return RateCheckResult{};
}

OnlineRateChecker::OnlineRateChecker(std::size_t edge_count, const Rat& r)
    : p_(r.num()), q_(r.den()), state_(edge_count) {
  AQT_REQUIRE(p_ > 0, "online checker needs a positive rate");
}

bool OnlineRateChecker::add_edge(EdgeId e, Time t) {
  if (!result_.ok) return false;
  AQT_REQUIRE(e < state_.size(), "edge id out of range: " << e);
  EdgeState& s = state_[e];
  AQT_REQUIRE(!s.any || t >= s.last_time,
              "online checker needs non-decreasing times per edge");
  s.last_time = t;
  ++s.count;
  const std::int64_t u = q_ * s.count - p_ * t;
  if (s.any && u - s.min_u >= p_) {
    result_.ok = false;
    result_.edge = e;
    result_.t1 = s.min_u_time;
    result_.t2 = t;
    result_.count = s.count - s.min_u_index + 1;
    result_.budget = Rat(p_, q_).ceil_mul(t - s.min_u_time + 1);
    return false;
  }
  if (!s.any || u < s.min_u) {
    s.min_u = u;
    s.min_u_time = t;
    s.min_u_index = s.count;
    s.any = true;
  }
  return true;
}

bool OnlineRateChecker::add(RouteSpan route, Time t) {
  for (EdgeId e : route)
    if (!add_edge(e, t)) return false;
  return true;
}

double empirical_rate(const RateAudit& audit) {
  // Infimum rate r for which the audit is rate-r feasible: the constraint
  // "count <= ceil(r * L)" on an interval with `count` injections spanning
  // L steps holds for every r > (count - 1) / L.  Diagnostic only; O(k^2)
  // per edge, intended for small audits.
  double best = 0.0;
  for (EdgeId e = 0; e < audit.edge_count(); ++e) {
    std::vector<Time> t = audit.times(e);
    if (t.size() < 2) continue;
    std::sort(t.begin(), t.end());
    for (std::size_t i = 0; i < t.size(); ++i) {
      for (std::size_t j = i + 1; j < t.size(); ++j) {
        const double need = static_cast<double>(j - i) /
                            static_cast<double>(t[j] - t[i] + 1);
        best = std::max(best, need);
      }
    }
  }
  return best;
}

}  // namespace aqt
