// Exact feasibility checkers for adversary rate constraints.
//
// Two adversary classes appear in the paper:
//
//  * rate-r adversary (§2, used for the instability results): for every
//    interval of length L and every edge e, at most ceil(r*L) injected
//    packets may require e.
//  * (w, r) adversary (Definition 2.1, used for the stability results): in
//    every window of w consecutive steps, at most r*w injected packets may
//    require e (an integer count, so at most floor(r*w)).
//
// Feasibility is checked over the *final effective routes at injection
// time* — the object Lemma 3.3's rerouting argument reasons about — so a
// composed adversary that reroutes packets is verified as a whole.
//
// The rate-r check is exact and O(k) per edge after sorting: with r = p/q
// and injection times t_1 <= ... <= t_k for an edge, interval [t_i, t_j]
// contains k' = j-i+1 injections and violates the constraint iff
//     k' > ceil(p*(t_j - t_i + 1)/q)   <=>   u_j - u_i >= p,
// where u_x = q*x - p*t_x.  So the constraint holds iff
//     max_j ( u_j - min_{i<=j} u_i ) < p.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

/// Injection log: per-edge injection times of packets whose (effective)
/// route uses the edge.  Populated by the engine when auditing is enabled,
/// or by hand in tests.
class RateAudit {
 public:
  explicit RateAudit(std::size_t edge_count) : per_edge_(edge_count) {}

  /// Record a packet injected at `t` whose final route is `route`.
  void add(RouteSpan route, Time t);

  /// Record only for edge `e`.
  void add_edge(EdgeId e, Time t);

  [[nodiscard]] const std::vector<Time>& times(EdgeId e) const {
    return per_edge_[e];
  }
  [[nodiscard]] std::size_t edge_count() const { return per_edge_.size(); }

  /// Total logged (edge, time) entries.
  [[nodiscard]] std::uint64_t entries() const { return entries_; }

 private:
  std::vector<std::vector<Time>> per_edge_;
  std::uint64_t entries_ = 0;
};

/// Result of a feasibility check.  When !ok, the witness fields identify a
/// violating edge and interval.
struct RateCheckResult {
  bool ok = true;
  EdgeId edge = kNoEdge;
  Time t1 = 0;
  Time t2 = 0;
  std::int64_t count = 0;   ///< Injections for `edge` within [t1, t2].
  std::int64_t budget = 0;  ///< Allowed maximum for that interval.

  [[nodiscard]] std::string describe(const Graph& g) const;
};

/// Exact rate-r feasibility (every interval, every edge).
RateCheckResult check_rate_r(const RateAudit& audit, const Rat& r);

/// Exact (w, r) feasibility: every w-step window holds at most floor(w*r)
/// injections per edge.
RateCheckResult check_window(const RateAudit& audit, std::int64_t w,
                             const Rat& r);

/// The tightest rate at which this audit would be feasible, as the maximum
/// over edges and intervals of count/length (a diagnostic; returned as a
/// double since it is only reported, never used in a constraint).
double empirical_rate(const RateAudit& audit);

/// Incremental rate-r checker: O(1) amortized per injection and O(edges)
/// memory, for long runs where buffering the whole audit is too costly.
///
/// Feed injections in non-decreasing time order (per edge); `ok()` flips to
/// false permanently at the first violation.  Caveat versus the post-hoc
/// checker: it sees routes *as injected* — if packets are later rerouted,
/// feed the extension edges at the original injection time via add_edge
/// when the reroute is issued (what LegalityCheckedAdversary-style wrappers
/// can do), or fall back to the post-hoc audit.
class OnlineRateChecker {
 public:
  OnlineRateChecker(std::size_t edge_count, const Rat& r);

  /// Records one injection requiring `e` at time `t`; returns ok().
  bool add_edge(EdgeId e, Time t);
  /// Records an injection with this route at time `t`; returns ok().
  bool add(RouteSpan route, Time t);

  [[nodiscard]] bool ok() const { return result_.ok; }
  /// First violation (valid when !ok()).
  [[nodiscard]] const RateCheckResult& violation() const { return result_; }

 private:
  struct EdgeState {
    std::int64_t count = 0;       ///< Injections so far.
    std::int64_t min_u = 0;       ///< min over i of q*i - p*t_i.
    Time min_u_time = 0;          ///< t_i attaining the minimum (witness).
    std::int64_t min_u_index = 0;  ///< i attaining the minimum.
    Time last_time = 0;
    bool any = false;
  };

  std::int64_t p_;
  std::int64_t q_;
  std::vector<EdgeState> state_;
  RateCheckResult result_;
};

}  // namespace aqt
