#include "aqt/core/obs_sink.hpp"

namespace aqt {

const char* to_string(StepPhase phase) {
  switch (phase) {
    case StepPhase::kTransmit:
      return "transmit";
    case StepPhase::kAbsorb:
      return "absorb";
    case StepPhase::kInject:
      return "inject";
    case StepPhase::kRecord:
      return "record";
    case StepPhase::kAudit:
      return "audit";
  }
  return "?";
}

}  // namespace aqt
