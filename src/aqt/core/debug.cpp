#include "aqt/core/debug.hpp"

#include <ostream>
#include <sstream>

namespace aqt {

void dump_state(const Engine& engine, std::ostream& os,
                const DumpOptions& options) {
  const Graph& g = engine.graph();
  os << "t=" << engine.now() << "  in-flight=" << engine.packets_in_flight()
     << "  absorbed=" << engine.total_absorbed() << '\n';
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const Buffer& buf = engine.buffer(e);
    if (buf.empty() && options.skip_empty) continue;
    os << "[" << g.edge(e).name << "] " << buf.size() << ":";
    std::size_t shown = 0;
    for (const BufferEntry& be : buf.ordered_entries()) {
      if (shown == options.max_per_buffer) {
        os << " ...";
        break;
      }
      const Packet& p = engine.packet(be.packet);
      const PacketMeta& m = engine.packet_meta(be.packet);
      os << (shown ? " | " : " ") << '#' << m.ordinal << "(tag " << m.tag
         << ')';
      if (options.show_routes) {
        os << ' ';
        for (std::size_t h = p.hop; h < p.route.size(); ++h) {
          if (h > p.hop) os << '>';
          os << g.edge(p.route[h]).name;
        }
      }
      ++shown;
    }
    os << '\n';
  }
}

std::string dump_state(const Engine& engine, const DumpOptions& options) {
  std::ostringstream os;
  dump_state(engine, os, options);
  return os.str();
}

}  // namespace aqt
