#include "aqt/core/probe.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"
#include "aqt/util/csv.hpp"

namespace aqt {

QueueProbe::QueueProbe(const Engine& engine, std::vector<EdgeId> edges)
    : engine_(engine), edges_(std::move(edges)), series_(edges_.size()) {
  AQT_REQUIRE(!edges_.empty(), "probe needs at least one edge");
  for (EdgeId e : edges_)
    AQT_REQUIRE(e < engine.graph().edge_count(),
                "probe edge out of range: " << e);
}

void QueueProbe::sample() {
  times_.push_back(engine_.now());
  for (std::size_t i = 0; i < edges_.size(); ++i)
    series_[i].push_back(engine_.queue_size(edges_[i]));
}

const std::vector<std::uint64_t>& QueueProbe::series(std::size_t i) const {
  AQT_REQUIRE(i < series_.size(), "probe index out of range");
  return series_[i];
}

std::uint64_t QueueProbe::at(std::size_t i, Time t) const {
  AQT_REQUIRE(i < series_.size(), "probe index out of range");
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  AQT_REQUIRE(it != times_.end() && *it == t,
              "step " << t << " was not sampled");
  const auto idx = static_cast<std::size_t>(it - times_.begin());
  return series_[i][idx];
}

void QueueProbe::save_csv(const std::string& path, const Graph& graph) const {
  std::vector<std::string> header = {"t"};
  for (EdgeId e : edges_) header.push_back(graph.edge(e).name);
  CsvWriter csv(path, header);
  for (std::size_t s = 0; s < times_.size(); ++s) {
    std::vector<std::string> row = {std::to_string(times_[s])};
    for (std::size_t i = 0; i < edges_.size(); ++i)
      row.push_back(std::to_string(series_[i][s]));
    csv.row(row);
  }
}

}  // namespace aqt
