// The synchronous store-and-forward engine (paper §2).
//
// Time advances in integer steps; step 0 is the initial configuration and
// the first simulated step is step 1.  Each step has two substeps:
//
//  substep 1 (send): every nonempty buffer forwards exactly one packet over
//    its edge — the packet with the smallest protocol priority key.  Greedy
//    (work-conserving) behaviour is thus structural: a nonempty buffer can
//    never idle.
//
//  substep 2 (receive/inject): forwarded packets arrive at the head node of
//    their edge; a packet that completed its route is absorbed, any other is
//    placed in the buffer of the next edge of its route.  Then the adversary
//    runs: it may reroute in-flight packets (Lemma 3.3; historic protocols
//    only) and inject new packets, which join the buffer of the first edge
//    of their route.
//
// Ordering within a step is fixed and documented so every run is
// deterministic and replayable:
//   * buffers send in increasing edge-id order;
//   * same-step buffer arrivals receive sequence numbers in that same edge
//     order, before any same-step injection (so FIFO's time-priority
//     property of Definition 4.2 holds structurally);
//   * injections are sequenced in the order the adversary issued them.
//
// Hot-path layout: the set of nonempty buffers is a dense bitmap scanned in
// word-sized strides (ascending edge id, exactly the former ordered-set
// order), buffers are flat binary heaps, packets are SoA records holding
// interned RouteRefs, and Engine::run lowers oblivious adversaries into
// blockwise CompiledSchedules so the steady-state step makes no virtual
// adversary call and no allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/buffer.hpp"
#include "aqt/core/compiled_schedule.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/metrics.hpp"
#include "aqt/core/packet.hpp"
#include "aqt/core/protocol.hpp"
#include "aqt/core/rate_check.hpp"
#include "aqt/core/route_table.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

class InvariantAuditor;
class PacketEventSink;
class RunTraceSink;
class StepPhaseSink;
class StepSampleSink;

/// The engine's borrowed observer sinks, passed as one unit.  Every member
/// is optional (null = off) and write-only: observers never change a run
/// (aqt-fuzz --obs-trials proves it).  The caller owns each sink and must
/// keep it alive for the engine's lifetime; sinks are engine-local, so two
/// engines running concurrently must not share one sink instance.
/// (The fourth observer, the step-level invariant auditor, is engine-owned
/// and stays a value knob: EngineConfig::audit_invariants.)
struct EngineSinks {
  /// Run-trace evidence writer (trace_sink.hpp).  When set, the engine
  /// emits a record for every observable event — initial packets, sends,
  /// absorptions, reroutes, injections, end-of-step queue depths — so an
  /// independent offline verifier (aqt-verify) can re-derive every model
  /// rule from the recorded run.  The caller finalizes it (e.g.
  /// RunTraceWriter::finish) after the run.
  RunTraceSink* trace = nullptr;

  /// Step-phase profiler (obs_sink.hpp).  When set, the engine reports the
  /// boundaries of every substep (transmit, absorb, inject, record, audit)
  /// so the obs layer's StepProfiler can wall-clock them.  Null costs one
  /// branch per phase boundary — near-zero, guarded by the tests/obs
  /// overhead test.
  StepPhaseSink* profile = nullptr;

  /// Packet-lifecycle sink (obs_sink.hpp).  When set, the engine reports
  /// every injection, per-hop send, and absorption — the stream the obs
  /// layer's JsonlEventWriter turns into machine-readable JSONL.
  PacketEventSink* events = nullptr;

  /// End-of-step sample sink (obs_sink.hpp).  When set, the engine hands
  /// over one StepSample per step — the hook the obs layer's
  /// TimeseriesRecorder and StabilityWatchdog plug into.  Null costs one
  /// branch per step.  Fan out to several sample consumers with
  /// obs::StepSampleFanout.
  StepSampleSink* samples = nullptr;
};

struct EngineConfig {
  /// Validate that every injected route is a simple directed path and that
  /// every reroute splices into one.  Cheap; keep on except in the very
  /// largest benches.  On the compiled-schedule path validation happens at
  /// block-compile time (same exception, earlier surface).
  bool validate_routes = true;

  /// Record (injection time, final effective route) pairs for post-hoc
  /// rate-feasibility checks.  Memory is one entry per (packet, route
  /// edge); enable in tests and medium benches.
  bool audit_rates = false;

  /// Subsample the occupancy time series every `series_stride` steps
  /// (0 disables the series).
  Time series_stride = 0;

  /// Re-derive the model invariants (packet conservation, active-set
  /// consistency, time-priority sequence order, route simplicity, work
  /// conservation) from whole engine state after every step; a violation
  /// aborts with a state dump.  See invariants.hpp.  Costs roughly one
  /// extra pass over the live state per step — keep on in tests and
  /// debugging runs, off in the largest benches.
  bool audit_invariants = false;

  /// Let Engine::run lower oblivious adversaries (is_oblivious()) into
  /// blockwise CompiledSchedules instead of polling them per step.  The
  /// result is byte-identical (trace hash included) to the polled path —
  /// the golden-matrix test pins this — so the knob exists only for A/B
  /// comparison and for forcing the polled path in differential tests.
  bool compile_schedules = true;

  /// All borrowed observer sinks, as one aggregate (see EngineSinks).
  /// (The pre-PR-5 per-sink alias fields — record_trace / profile /
  /// record_events — are gone; aqt-audit rule AUD013 keeps them out.)
  EngineSinks sinks;
};

/// The simulator.  Owns packets, buffers and metrics; borrows graph and
/// protocol (both must outlive the engine).
class Engine {
 public:
  Engine(const Graph& graph, const Protocol& protocol,
         EngineConfig config = {});
  ~Engine();

  /// Places a packet in the buffer of the first edge of `route` as part of
  /// the initial configuration (before step 1); its injection time is 0.
  /// Must not be called once stepping has begun.
  PacketId add_initial_packet(const Route& route, std::uint64_t tag = 0);

  /// Executes one time step; `adversary` may be null (no injections).
  /// Always polls the adversary (the compiled fast path lives in run()).
  void step(Adversary* adversary);

  /// Runs up to `count` steps and returns the number taken.  When
  /// `stop_when_finished` is set, stops before the first step for which
  /// adversary->finished() reported true.  Oblivious adversaries are
  /// compiled blockwise (see EngineConfig::compile_schedules); all others
  /// are polled per step.
  Time run(Adversary* adversary, Time count, bool stop_when_finished = false);

  /// Runs with no injections until every buffer is empty (or `cap` steps
  /// elapse); returns the number of steps taken.  With finite routes and
  /// no adversary the network always drains, so hitting the cap indicates
  /// a caller bug — it is reported via the return value, not an error.
  Time drain(Time cap);

  // --- State access -------------------------------------------------------

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const Protocol& protocol() const { return protocol_; }

  [[nodiscard]] const Buffer& buffer(EdgeId e) const;
  [[nodiscard]] std::size_t queue_size(EdgeId e) const;

  /// Total live packets (buffers only; between steps nothing is in transit).
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return arena_.live_count();
  }
  /// Largest buffer right now.
  [[nodiscard]] std::uint64_t max_queue_now() const;

  /// Edges with nonempty buffers, in increasing edge-id order (the order
  /// buffers send in).  Materialized from the active bitmap on every call —
  /// cold-path use only (audits, dumps, tests).
  [[nodiscard]] std::vector<EdgeId> active_edges() const;

  [[nodiscard]] const Packet& packet(PacketId id) const { return arena_[id]; }
  /// Cold per-packet fields (tag, ordinal); see PacketMeta.
  [[nodiscard]] const PacketMeta& packet_meta(PacketId id) const {
    return arena_.meta(id);
  }
  [[nodiscard]] bool is_live(PacketId id) const { return arena_.is_live(id); }
  [[nodiscard]] const PacketArena& arena() const { return arena_; }
  [[nodiscard]] const RouteTable& route_table() const { return routes_; }

  [[nodiscard]] std::uint64_t total_injected() const {
    return arena_.total_created();
  }
  [[nodiscard]] std::uint64_t total_absorbed() const { return absorbed_; }

  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

  // --- Rate auditing ------------------------------------------------------

  /// The audit of all *finalized* packets (absorbed so far).  Call
  /// finalize_audit() to fold in still-live packets before checking.
  [[nodiscard]] const RateAudit& audit() const;

  /// Adds every live packet's current effective route to the audit (their
  /// routes can no longer change from the caller's perspective).  Call once,
  /// at the end of a run, before check_rate_r / check_window.
  void finalize_audit();

 private:
  friend void save_checkpoint(const Engine& engine, std::ostream& os);
  friend void load_checkpoint(Engine& engine, std::istream& is);
  friend struct EngineTamperer;  // Test-only corruption (invariants.hpp).

  void enqueue(PacketId id, Time t);
  void absorb(PacketId id, Time t);
  void apply_reroute(const Reroute& rr);
  void apply_injection(const Injection& inj, Time t);
  /// Injection of an already-interned, already-validated route.
  void apply_injection_ref(RouteRef route, std::uint64_t tag, Time t);

  /// Shared step skeleton; `inject_body(t)` runs substep 2b when
  /// `has_inject` is set.
  template <typename InjectBody>
  void step_body(bool has_inject, InjectBody&& inject_body);
  void step_compiled(const CompiledSchedule::StepView& view);

  /// Polls `adv` for steps [first, first + count) into schedule_.
  void compile_block(Adversary& adv, Time first, Time count);

  // Active-edge bitmap (one bit per edge; word-scanned in ascending order).
  void set_active_bit(EdgeId e);
  void clear_active_bit(EdgeId e);
  [[nodiscard]] bool test_active_bit(EdgeId e) const;
  template <typename Fn>
  void for_each_active(Fn&& fn) const;  ///< Ascending edge-id order.

  const Graph& graph_;
  const Protocol& protocol_;
  KeyRule key_rule_;  ///< Cached protocol_.key_rule(); see Engine::enqueue.
  EngineConfig config_;

  PacketArena arena_;
  RouteTable routes_;
  std::vector<Buffer> buffers_;
  std::vector<std::uint64_t> active_words_;  ///< Bitmap: nonempty buffers.
  std::size_t active_count_ = 0;
  Metrics metrics_;

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t absorbed_ = 0;
  bool stepping_started_ = false;
  bool audit_finalized_ = false;

  std::optional<RateAudit> audit_;
  std::unique_ptr<InvariantAuditor> invariants_;

  // Scratch reused across steps.
  std::vector<PacketId> sent_;
  AdversaryStep adv_step_;
  Route splice_scratch_;        ///< Reroute splice buffer (no per-reroute alloc).
  CompiledSchedule schedule_;   ///< Current compiled block (run() only).
};

}  // namespace aqt
