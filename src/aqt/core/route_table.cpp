#include "aqt/core/route_table.hpp"

#include <algorithm>
#include <cstring>

namespace aqt {
namespace {

std::uint64_t hash_route(RouteSpan route) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const EdgeId e : route) {
    h ^= e;
    h *= 1099511628211ULL;
  }
  // Fold in the length so prefixes hash apart even under weak mixing.
  h ^= route.size();
  h *= 1099511628211ULL;
  return h;
}

}  // namespace

RouteRef RouteTable::intern(RouteSpan route) {
  if (route.empty()) return RouteRef{};
  const std::uint64_t h = hash_route(route);
  std::vector<RouteRef>& bucket = dedup_[h];
  for (const RouteRef& ref : bucket) {
    if (ref.len == route.size() &&
        std::equal(ref.begin(), ref.end(), route.begin()))
      return ref;
  }
  const RouteRef ref{append(route), static_cast<std::uint32_t>(route.size())};
  bucket.push_back(ref);
  ++count_;
  return ref;
}

const EdgeId* RouteTable::append(RouteSpan route) {
  if (route.size() > kChunkEdges) {
    // Oversized route: dedicated chunk (still stable storage; the regular
    // chunk cursor is untouched so pool packing stays dense).
    chunks_.push_back(std::make_unique<EdgeId[]>(route.size()));
    pool_bytes_ += route.size() * sizeof(EdgeId);
    EdgeId* out = chunks_.back().get();
    std::memcpy(out, route.data(), route.size() * sizeof(EdgeId));
    // Keep the *current* fill chunk last so chunk_used_ keeps addressing it.
    if (chunks_.size() >= 2)
      std::swap(chunks_[chunks_.size() - 2], chunks_.back());
    else
      chunk_used_ = kChunkEdges;  // No fill chunk yet; force a fresh one.
    return out;
  }
  if (chunk_used_ + route.size() > kChunkEdges) {
    chunks_.push_back(std::make_unique<EdgeId[]>(kChunkEdges));
    pool_bytes_ += kChunkEdges * sizeof(EdgeId);
    chunk_used_ = 0;
  }
  EdgeId* out = chunks_.back().get() + chunk_used_;
  std::memcpy(out, route.data(), route.size() * sizeof(EdgeId));
  chunk_used_ += route.size();
  return out;
}

}  // namespace aqt
