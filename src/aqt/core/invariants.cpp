#include "aqt/core/invariants.hpp"

#include <algorithm>
#include <iterator>

#include "aqt/core/buffer.hpp"
#include "aqt/core/debug.hpp"
#include "aqt/core/engine.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/packet.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

InvariantAuditor::InvariantAuditor(const Engine& engine) : engine_(engine) {
  node_stamp_.assign(engine_.graph().node_count(), 0);
}

void InvariantAuditor::begin_step() {
  pre_active_ = engine_.active_edges();  // Sorted (ascending edge id).
  pre_injected_ = engine_.total_injected();
  pre_absorbed_ = engine_.total_absorbed();
  pre_live_ = engine_.packets_in_flight();
  armed_ = true;
}

void InvariantAuditor::end_step(const std::vector<PacketId>& sent) {
  AQT_CHECK(armed_, "InvariantAuditor::end_step without begin_step");
  armed_ = false;
  entries_seen_ = 0;
  scan_buffers();
  check_packet_conservation();
  check_work_conservation(sent);
  ++steps_audited_;
}

void InvariantAuditor::check_packet_conservation() const {
  const std::uint64_t injected = engine_.total_injected();
  const std::uint64_t absorbed = engine_.total_absorbed();
  const std::uint64_t live = engine_.packets_in_flight();
  AQT_CHECK(injected == absorbed + live,
            "invariant violated (packet conservation): injected "
                << injected << " != absorbed " << absorbed << " + in-flight "
                << live << " at step " << engine_.now() << "\n"
                << dump_state(engine_));
  // Between steps nothing is in transit, so the buffers jointly hold the
  // live set: same cardinality, and check_buffer_entries() has already
  // verified each entry maps to a distinct live packet.
  AQT_CHECK(entries_seen_ == live,
            "invariant violated (packet conservation): buffers hold "
                << entries_seen_ << " entries but " << live
                << " packets are live at step " << engine_.now() << "\n"
                << dump_state(engine_));
  AQT_CHECK(injected >= pre_injected_ && absorbed >= pre_absorbed_,
            "invariant violated (packet conservation): counters moved "
            "backwards across step "
                << engine_.now() << "\n"
                << dump_state(engine_));
  const std::uint64_t injected_delta = injected - pre_injected_;
  const std::uint64_t absorbed_delta = absorbed - pre_absorbed_;
  AQT_CHECK(pre_live_ + injected_delta == live + absorbed_delta,
            "invariant violated (packet conservation): step "
                << engine_.now() << " flow imbalance: pre-live " << pre_live_
                << " + injected " << injected_delta << " != live " << live
                << " + absorbed " << absorbed_delta << "\n"
                << dump_state(engine_));
}

void InvariantAuditor::scan_buffers() {
  // Single merged O(entries + E) pass.  Between steps nothing is in
  // transit, so the buffers jointly hold the entire live set (the count is
  // cross-checked by check_packet_conservation) — auditing every buffered
  // packet therefore audits every live packet, and one walk covers
  // active-set consistency, per-entry sanity, time-priority order, and
  // route simplicity without a separate arena sweep.
  const Graph& g = engine_.graph();
  const std::vector<EdgeId> active = engine_.active_edges();
  auto listed_it = active.begin();  // Materialized in edge-id order.
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const bool listed = listed_it != active.end() && *listed_it == e;
    if (listed) ++listed_it;
    const Buffer& buf = engine_.buffer(e);
    AQT_CHECK(!buf.empty() == listed,
              "invariant violated (active-set consistency): edge "
                  << g.edge(e).name << " is "
                  << (!buf.empty() ? "nonempty" : "empty") << " but "
                  << (listed ? "listed" : "not listed")
                  << " in the active set at step " << engine_.now() << "\n"
                  << dump_state(engine_));
    if (!listed) continue;
    seq_scratch_.clear();
    for (const BufferEntry& entry : buf) {
      AQT_CHECK(engine_.is_live(entry.packet),
                "invariant violated (buffer entries): buffer of edge "
                    << g.edge(e).name << " holds dead packet id "
                    << entry.packet << " at step " << engine_.now() << "\n"
                    << dump_state(engine_));
      const Packet& p = engine_.packet(entry.packet);
      AQT_CHECK(p.hop < p.route.size() && p.route[p.hop] == e,
                "invariant violated (buffer entries): packet "
                    << entry.packet << " queued at edge " << g.edge(e).name
                    << " but its route wants "
                    << (p.hop < p.route.size()
                            ? g.edge(p.route[p.hop]).name
                            : std::string("<finished>"))
                    << " at step " << engine_.now() << "\n"
                    << dump_state(engine_));
      AQT_CHECK(entry.seq == p.arrival_seq,
                "invariant violated (time-priority): buffer entry seq "
                    << entry.seq << " disagrees with packet "
                    << entry.packet << "'s arrival_seq " << p.arrival_seq
                    << " at edge " << g.edge(e).name << ", step "
                    << engine_.now() << "\n"
                    << dump_state(engine_));
      check_route_simple(entry.packet, p);
      seq_scratch_.emplace_back(entry.seq, p.arrival_time);
      ++entries_seen_;
    }
    // Sequence numbers are issued globally in time order, so within one
    // buffer the seq order must agree with arrival-time order — the
    // structural half of FIFO's time-priority property (Definition 4.2).
    std::sort(seq_scratch_.begin(), seq_scratch_.end());
    for (std::size_t i = 1; i < seq_scratch_.size(); ++i) {
      AQT_CHECK(seq_scratch_[i - 1].second <= seq_scratch_[i].second,
                "invariant violated (time-priority): edge "
                    << g.edge(e).name << " holds seq "
                    << seq_scratch_[i - 1].first << " (arrival t="
                    << seq_scratch_[i - 1].second << ") and seq "
                    << seq_scratch_[i].first << " (arrival t="
                    << seq_scratch_[i].second
                    << ") out of time order at step " << engine_.now() << "\n"
                    << dump_state(engine_));
    }
  }
}

void InvariantAuditor::check_route_simple(PacketId id, const Packet& p) {
  const Graph& g = engine_.graph();
  if (++stamp_epoch_ == 0) {  // Epoch wrapped: reset marks once.
    std::fill(node_stamp_.begin(), node_stamp_.end(), 0);
    stamp_epoch_ = 1;
  }
  bool simple = true;
  node_stamp_[g.tail(p.route.front())] = stamp_epoch_;
  NodeId at = g.tail(p.route.front());
  for (const EdgeId e : p.route) {
    if (e >= g.edge_count() || g.tail(e) != at ||
        node_stamp_[g.head(e)] == stamp_epoch_) {
      simple = false;
      break;
    }
    at = g.head(e);
    node_stamp_[at] = stamp_epoch_;
  }
  AQT_CHECK(simple,
            "invariant violated (route simplicity): live packet " << id
                << "'s effective route is not a simple directed path at "
                   "step "
                << engine_.now() << "\n"
                << dump_state(engine_));
}

void InvariantAuditor::check_work_conservation(
    const std::vector<PacketId>& sent) const {
  const Graph& g = engine_.graph();
  AQT_CHECK(sent.size() == pre_active_.size(),
            "invariant violated (work conservation): "
                << pre_active_.size() << " buffers were nonempty but "
                << sent.size() << " packets were sent at step "
                << engine_.now() << "\n"
                << dump_state(engine_));
  for (std::size_t i = 0; i < sent.size(); ++i) {
    const PacketId id = sent[i];
    if (!engine_.is_live(id)) continue;  // Absorbed (or its slot recycled).
    const Packet& p = engine_.packet(id);
    // A live sent packet advanced one hop; a recycled slot holds a fresh
    // injection with hop == 0 and is indistinguishable only in id, so it
    // is skipped rather than mis-attributed.
    if (p.hop == 0) continue;
    AQT_CHECK(p.route[p.hop - 1] == pre_active_[i],
              "invariant violated (work conservation): slot " << i
                  << " of this step's sends (edge "
                  << g.edge(pre_active_[i]).name << ") forwarded packet "
                  << id << ", whose route crossed "
                  << g.edge(p.route[p.hop - 1]).name << " instead at step "
                  << engine_.now() << "\n"
                  << dump_state(engine_));
  }
}

// --- Test-only corruption hooks --------------------------------------------

void EngineTamperer::phantom_absorption(Engine& engine) {
  ++engine.absorbed_;
}

void EngineTamperer::make_route_nonsimple(Engine& engine, PacketId id) {
  Packet& p = engine.arena_[id];
  // Re-crossing the packet's own current edge revisits its head node —
  // exactly the cycle Definition §2's simplicity requirement forbids.
  // Routes are interned, so the corruption is smuggled in as a freshly
  // interned non-simple route (bypassing all validation, as before).
  Route corrupted(p.route.begin(), p.route.end());
  corrupted.push_back(p.route[p.hop]);
  p.route = engine.routes_.intern(corrupted);
}

void EngineTamperer::hide_active(Engine& engine, EdgeId e) {
  engine.clear_active_bit(e);
}

void EngineTamperer::scramble_buffer_seq(Engine& engine, EdgeId e) {
  Buffer& buf = engine.buffers_[e];
  AQT_REQUIRE(!buf.empty(), "scramble_buffer_seq on empty buffer");
  // Forge the *last-served* entry: it survives the next step (which
  // forwards the minimum), so the audit must spot the stale corruption.
  BufferEntry entry = buf.max_entry();
  buf.erase_packet(entry.packet);
  entry.seq += 1u << 20;  // No longer matches the packet's arrival_seq.
  buf.push(entry);
}

}  // namespace aqt
