#include "aqt/core/checkpoint.hpp"

#include <fstream>
#include <sstream>

#include "aqt/core/engine.hpp"
#include "aqt/util/check.hpp"

namespace aqt {
namespace {

constexpr const char* kMagic = "AQT-CHECKPOINT";
// Version 2: metrics carry step/occupancy totals and the queue-depth and
// residence histograms (observability layer).
constexpr int kVersion = 2;

/// FNV-1a over edge names: ties a checkpoint to an identically-built graph.
std::uint64_t graph_checksum(const Graph& g) {
  std::uint64_t h = 1469598103934665603ULL;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    for (const char c : g.edge(e).name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    h ^= 0x1fULL;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void save_checkpoint(const Engine& engine, std::ostream& os) {
  AQT_REQUIRE(!engine.config_.audit_rates,
              "checkpointing does not carry the rate audit; disable "
              "EngineConfig::audit_rates for checkpointed runs");
  const Graph& g = engine.graph_;
  os << kMagic << ' ' << kVersion << '\n';
  os << "graph " << g.edge_count() << ' ' << graph_checksum(g) << '\n';
  os << "clock " << engine.now_ << ' ' << engine.seq_ << ' '
     << engine.absorbed_ << ' ' << (engine.stepping_started_ ? 1 : 0)
     << '\n';
  os << "created " << engine.arena_.total_created() << '\n';
  os << "packets " << engine.arena_.live_count() << '\n';
  engine.arena_.for_each_live(
      [&](PacketId, const Packet& p, const PacketMeta& m) {
        os << "p " << m.ordinal << ' ' << m.tag << ' ' << p.inject_time << ' '
           << p.arrival_time << ' ' << p.arrival_seq << ' ' << p.hop << ' '
           << p.route.size();
        for (EdgeId e : p.route) os << ' ' << e;
        os << '\n';
      });
  engine.metrics_.save(os);
  os << "end\n";
}

void save_checkpoint_file(const Engine& engine, const std::string& path) {
  std::ofstream out(path);
  AQT_REQUIRE(static_cast<bool>(out), "cannot open " << path);
  save_checkpoint(engine, out);
}

void load_checkpoint(Engine& engine, std::istream& is) {
  AQT_REQUIRE(!engine.config_.audit_rates,
              "checkpoint restore requires auditing disabled");
  AQT_REQUIRE(engine.now_ == 0 && !engine.stepping_started_ &&
                  engine.arena_.live_count() == 0 &&
                  engine.arena_.total_created() == 0,
              "checkpoints restore only into a fresh engine");
  const Graph& g = engine.graph_;

  std::string magic;
  int version = 0;
  is >> magic >> version;
  AQT_REQUIRE(is && magic == kMagic, "not a checkpoint stream");
  AQT_REQUIRE(version == kVersion, "unsupported checkpoint version "
                                       << version);

  std::string word;
  std::size_t edge_count = 0;
  std::uint64_t checksum = 0;
  is >> word >> edge_count >> checksum;
  AQT_REQUIRE(is && word == "graph", "malformed graph header");
  AQT_REQUIRE(edge_count == g.edge_count() && checksum == graph_checksum(g),
              "checkpoint was taken on a different network");

  int started = 0;
  is >> word >> engine.now_ >> engine.seq_ >> engine.absorbed_ >> started;
  AQT_REQUIRE(is && word == "clock", "malformed clock line");
  engine.stepping_started_ = started != 0;

  std::uint64_t created = 0;
  is >> word >> created;
  AQT_REQUIRE(is && word == "created", "malformed created line");

  std::uint64_t live = 0;
  is >> word >> live;
  AQT_REQUIRE(is && word == "packets", "malformed packets header");
  Route route;
  for (std::uint64_t i = 0; i < live; ++i) {
    Packet p;
    std::uint64_t ordinal = 0;
    std::uint64_t tag = 0;
    std::size_t route_len = 0;
    is >> word >> ordinal >> tag >> p.inject_time >> p.arrival_time >>
        p.arrival_seq >> p.hop >> route_len;
    AQT_REQUIRE(is && word == "p", "malformed packet record " << i);
    route.resize(route_len);
    for (EdgeId& e : route) {
      is >> e;
      AQT_REQUIRE(is && e < g.edge_count(), "bad edge id in packet route");
    }
    AQT_REQUIRE(p.hop < route.size(), "packet beyond end of route");
    p.route = engine.routes_.intern(route);
    const PacketId id = engine.arena_.restore(p, ordinal, tag);
    // Rebuild the buffer entry: the key is a pure function of the packet's
    // stored arrival data, so deterministic protocols reproduce it exactly.
    const Packet& stored = engine.arena_[id];
    const EdgeId edge = stored.route[stored.hop];
    const PriorityKey k = engine.protocol_.key(stored, stored.arrival_time,
                                               stored.arrival_seq);
    engine.buffers_[edge].push(
        BufferEntry{k.k1, k.k2, stored.arrival_seq, id});
    engine.set_active_bit(edge);
  }
  engine.arena_.set_total_created(created);
  engine.metrics_.load(is);
  is >> word;
  AQT_REQUIRE(is && word == "end", "truncated checkpoint");
}

void load_checkpoint_file(Engine& engine, const std::string& path) {
  std::ifstream in(path);
  AQT_REQUIRE(static_cast<bool>(in), "cannot open " << path);
  load_checkpoint(engine, in);
}

}  // namespace aqt
