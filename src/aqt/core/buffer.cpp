#include "aqt/core/buffer.hpp"

#include "aqt/util/check.hpp"

namespace aqt {

BufferEntry Buffer::pop_min() {
  AQT_CHECK(!entries_.empty(), "pop_min on empty buffer");
  auto it = entries_.begin();
  BufferEntry e = *it;
  entries_.erase(it);
  return e;
}

bool Buffer::erase_packet(PacketId packet) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->packet == packet) {
      // aqt-audit: allow(AUD012) -- the erase exits the loop via return
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

const BufferEntry& Buffer::front() const {
  AQT_CHECK(!entries_.empty(), "front on empty buffer");
  return *entries_.begin();
}

}  // namespace aqt
