#include "aqt/core/buffer.hpp"

#include <algorithm>

#include "aqt/util/check.hpp"

namespace aqt {

bool Buffer::erase_packet(PacketId packet) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].packet != packet) continue;
    entries_[i] = entries_.back();
    entries_.pop_back();
    if (i < entries_.size()) {
      // The moved-in entry may violate the heap property in either
      // direction relative to its new neighborhood.
      sift_down(i);
      sift_up(i);
    }
    return true;
  }
  return false;
}

const BufferEntry& Buffer::front() const {
  AQT_CHECK(!entries_.empty(), "front on empty buffer");
  return entries_.front();
}

std::vector<BufferEntry> Buffer::ordered_entries() const {
  std::vector<BufferEntry> out(entries_);
  std::sort(out.begin(), out.end());
  return out;
}

const BufferEntry& Buffer::max_entry() const {
  AQT_CHECK(!entries_.empty(), "max_entry on empty buffer");
  return *std::max_element(entries_.begin(), entries_.end());
}

}  // namespace aqt
