// Per-edge queue probing: sample selected buffers every step to observe
// fine-grained dynamics (e.g. the R_i cascade of Claim 3.9, the buffer
// floors Q_i of Claim 3.11).
//
// The engine's Metrics track only maxima; a QueueProbe records the full
// time series for a chosen edge set, which the gadget-anatomy experiments
// compare against the paper's closed forms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/engine.hpp"
#include "aqt/core/types.hpp"

namespace aqt {

class QueueProbe {
 public:
  /// Probes the given edges of `engine` (borrowed; must outlive the probe).
  QueueProbe(const Engine& engine, std::vector<EdgeId> edges);

  /// Records the current queue size of every probed edge; call once per
  /// step (after Engine::step).
  void sample();

  [[nodiscard]] const std::vector<EdgeId>& edges() const { return edges_; }
  [[nodiscard]] std::size_t samples() const { return times_.size(); }
  [[nodiscard]] const std::vector<Time>& times() const { return times_; }

  /// Series for the i-th probed edge.
  [[nodiscard]] const std::vector<std::uint64_t>& series(
      std::size_t i) const;

  /// Queue size of probed edge i at the sample taken at step t (the series
  /// value whose time is t); throws if t was never sampled.
  [[nodiscard]] std::uint64_t at(std::size_t i, Time t) const;

  /// Writes a CSV: t, <edge name>, <edge name>, ...
  void save_csv(const std::string& path, const Graph& graph) const;

 private:
  const Engine& engine_;
  std::vector<EdgeId> edges_;
  std::vector<Time> times_;
  std::vector<std::vector<std::uint64_t>> series_;
};

}  // namespace aqt
