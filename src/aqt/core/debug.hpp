// Human-readable state dumps for debugging small simulations.
#pragma once

#include <iosfwd>
#include <string>

#include "aqt/core/engine.hpp"

namespace aqt {

struct DumpOptions {
  bool show_routes = true;       ///< Full remaining route per packet.
  std::size_t max_per_buffer = 8;  ///< Truncate long queues.
  bool skip_empty = true;        ///< Omit empty buffers.
};

/// Writes the engine's queues in forwarding order, e.g.:
///   t=12  in-flight=5  absorbed=3
///   [l1] 2: #4(tag 7) l1>l2>l3 | #9(tag 0) l1
void dump_state(const Engine& engine, std::ostream& os,
                const DumpOptions& options = {});

/// Same, as a string.
std::string dump_state(const Engine& engine, const DumpOptions& options = {});

}  // namespace aqt
