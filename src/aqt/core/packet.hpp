// Packet records and the recycling packet arena.
//
// A packet stores its *full effective route* (the traversed prefix plus the
// remaining suffix) and an index `hop` identifying the edge it is currently
// waiting for or crossing.  Keeping the traversed prefix is deliberate: the
// paper's rerouting technique (Lemma 3.3) replaces route *suffixes* on the
// fly, and rate-feasibility of the composed adversary is defined over the
// final effective route at the original injection time — exactly what this
// representation preserves.
//
// Long instability runs inject millions of packets but only O(max queue)
// are alive at once, so the arena recycles slots of absorbed packets and
// reclaims their route storage.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

/// One packet.  Plain data; owned by the PacketArena.
struct Packet {
  Route route;            ///< Full effective route (prefix + remainder).
  std::uint32_t hop = 0;  ///< Index of the current edge in `route`.
  Time inject_time = 0;   ///< Step at which the adversary issued the packet.
  Time arrival_time = 0;  ///< Step of arrival at the current buffer.
  std::uint64_t arrival_seq = 0;  ///< Global arrival sequence (tie-break).
  std::uint64_t tag = 0;  ///< Free-form label assigned by the adversary.
  /// Creation ordinal (0-based, in injection order).  Unlike PacketId,
  /// which reuses slots, the ordinal identifies the "n-th packet ever
  /// injected" — a protocol-independent identity used by trace replay.
  std::uint64_t ordinal = 0;
  std::uint32_t generation = 0;  ///< Slot reuse counter (dangling-id guard).
  bool alive = false;

  /// Edge the packet waits for / crosses next.
  [[nodiscard]] EdgeId current_edge() const {
    AQT_CHECK(hop < route.size(), "current_edge() on finished packet");
    return route[hop];
  }

  /// Number of edges still to traverse, including the current one.
  [[nodiscard]] std::size_t remaining() const { return route.size() - hop; }

  /// Number of edges already fully traversed.
  [[nodiscard]] std::size_t traversed() const { return hop; }
};

/// Slot-recycling arena.  Ids are stable for the lifetime of the packet.
class PacketArena {
 public:
  /// Creates a live packet; the id may reuse an absorbed packet's slot.
  PacketId create(Route route, Time inject_time, std::uint64_t tag);

  /// Destroys (recycles) a live packet.
  void destroy(PacketId id);

  [[nodiscard]] Packet& operator[](PacketId id) {
    AQT_CHECK(id < slots_.size() && slots_[id].alive, "dead packet id " << id);
    return slots_[id];
  }
  [[nodiscard]] const Packet& operator[](PacketId id) const {
    AQT_CHECK(id < slots_.size() && slots_[id].alive, "dead packet id " << id);
    return slots_[id];
  }

  [[nodiscard]] bool is_live(PacketId id) const {
    return id < slots_.size() && slots_[id].alive;
  }

  /// Id of the live packet with creation ordinal `ordinal`, or kNoPacket if
  /// it was never created or has been absorbed.
  [[nodiscard]] PacketId find_by_ordinal(std::uint64_t ordinal) const;

  /// Checkpoint plumbing: re-creates a packet verbatim (ordinal included)
  /// without consuming a fresh ordinal.  `p.alive` must be true.
  PacketId restore(Packet p);

  /// Checkpoint plumbing: restores the creation counter.
  void set_total_created(std::uint64_t n) { created_ = n; }

  [[nodiscard]] std::uint64_t live_count() const { return live_; }
  [[nodiscard]] std::uint64_t total_created() const { return created_; }

  /// Calls fn(PacketId, const Packet&) for every live packet, in id order.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (slots_[i].alive) fn(static_cast<PacketId>(i), slots_[i]);
  }

 private:
  std::vector<Packet> slots_;
  std::vector<PacketId> free_;
  std::unordered_map<std::uint64_t, PacketId> by_ordinal_;  ///< Live only.
  std::uint64_t live_ = 0;
  std::uint64_t created_ = 0;
};

}  // namespace aqt
