// Packet records and the recycling packet arena.
//
// A packet stores its *full effective route* (the traversed prefix plus the
// remaining suffix) and an index `hop` identifying the edge it is currently
// waiting for or crossing.  Keeping the traversed prefix is deliberate: the
// paper's rerouting technique (Lemma 3.3) replaces route *suffixes* on the
// fly, and rate-feasibility of the composed adversary is defined over the
// final effective route at the original injection time — exactly what this
// representation preserves.
//
// Storage is structure-of-arrays: the `Packet` struct holds only the fields
// the hot loop touches every step (the interned route ref, hop, times, and
// the arrival sequence that protocol keys are computed from), 40 bytes per
// packet; identity and bookkeeping fields (tag, ordinal, generation, alive)
// live in a parallel `PacketMeta` array that only injection, absorption,
// tracing, and debugging read.  Routes themselves are interned in the
// engine's RouteTable (route_table.hpp), so creating a packet copies a
// 12-byte ref, never a route.
//
// Long instability runs inject millions of packets but only O(max queue)
// are alive at once, so the arena recycles slots of absorbed packets;
// `recycled_total()` backs the `aqt_arena_recycled_total` gauge.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

/// One packet's hot fields.  Plain data; owned by the PacketArena.
struct Packet {
  RouteRef route;         ///< Full effective route (prefix + remainder).
  std::uint32_t hop = 0;  ///< Index of the current edge in `route`.
  Time inject_time = 0;   ///< Step at which the adversary issued the packet.
  Time arrival_time = 0;  ///< Step of arrival at the current buffer.
  std::uint64_t arrival_seq = 0;  ///< Global arrival sequence (tie-break).

  /// Edge the packet waits for / crosses next.
  [[nodiscard]] EdgeId current_edge() const {
    AQT_CHECK(hop < route.size(), "current_edge() on finished packet");
    return route[hop];
  }

  /// Number of edges still to traverse, including the current one.
  [[nodiscard]] std::size_t remaining() const { return route.size() - hop; }

  /// Number of edges already fully traversed.
  [[nodiscard]] std::size_t traversed() const { return hop; }
};

/// One packet's cold fields, kept out of the hot array.
struct PacketMeta {
  std::uint64_t tag = 0;  ///< Free-form label assigned by the adversary.
  /// Creation ordinal (0-based, in injection order).  Unlike PacketId,
  /// which reuses slots, the ordinal identifies the "n-th packet ever
  /// injected" — a protocol-independent identity used by trace replay.
  std::uint64_t ordinal = 0;
  std::uint32_t generation = 0;  ///< Slot reuse counter (dangling-id guard).
  bool alive = false;
};

/// Slot-recycling arena.  Ids are stable for the lifetime of the packet.
class PacketArena {
 public:
  /// Creates a live packet; the id may reuse an absorbed packet's slot.
  /// `route` must be interned (stable storage outliving the arena).
  PacketId create(RouteRef route, Time inject_time, std::uint64_t tag);

  /// Destroys (recycles) a live packet.
  void destroy(PacketId id);

  // Hot access is bounds-checked only: verifying `alive` here would load
  // the cold meta_ line on every touch, which is exactly the traffic the
  // hot/cold split removes.  Callers that may hold stale ids go through
  // is_live()/meta(), which do check.
  [[nodiscard]] Packet& operator[](PacketId id) {
    AQT_CHECK(id < hot_.size(), "packet id out of range " << id);
    return hot_[id];
  }
  [[nodiscard]] const Packet& operator[](PacketId id) const {
    AQT_CHECK(id < hot_.size(), "packet id out of range " << id);
    return hot_[id];
  }

  [[nodiscard]] const PacketMeta& meta(PacketId id) const {
    AQT_CHECK(id < meta_.size() && meta_[id].alive, "dead packet id " << id);
    return meta_[id];
  }

  [[nodiscard]] bool is_live(PacketId id) const {
    return id < meta_.size() && meta_[id].alive;
  }

  /// Id of the live packet with creation ordinal `ordinal`, or kNoPacket if
  /// it was never created or has been absorbed.  Linear scan over the slot
  /// table — only trace replay and tests resolve ordinals, never the hot
  /// loop, so the former ordinal->id hash map (maintained on every create
  /// and destroy) was pure per-packet overhead.
  [[nodiscard]] PacketId find_by_ordinal(std::uint64_t ordinal) const;

  /// Checkpoint plumbing: re-creates a packet verbatim (ordinal included)
  /// without consuming a fresh ordinal.
  PacketId restore(const Packet& hot, std::uint64_t ordinal,
                   std::uint64_t tag);

  /// Checkpoint plumbing: restores the creation counter.
  void set_total_created(std::uint64_t n) { created_ = n; }

  [[nodiscard]] std::uint64_t live_count() const { return live_; }
  [[nodiscard]] std::uint64_t total_created() const { return created_; }

  /// Times a create() reused an absorbed packet's slot.
  [[nodiscard]] std::uint64_t recycled_total() const { return recycled_; }

  /// Calls fn(PacketId, const Packet&, const PacketMeta&) for every live
  /// packet, in id order.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::size_t i = 0; i < hot_.size(); ++i)
      if (meta_[i].alive) fn(static_cast<PacketId>(i), hot_[i], meta_[i]);
  }

 private:
  PacketId allocate_slot();

  std::vector<Packet> hot_;
  std::vector<PacketMeta> meta_;  ///< Parallel to hot_.
  std::vector<PacketId> free_;
  std::uint64_t live_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace aqt
