// Directed multigraph model of the communication network (paper §2).
//
// Nodes are switches; each directed edge is a unit-capacity link with one
// FIFO-agnostic buffer at its tail.  Nodes and edges carry names so
// constructions like the F_n gadget can address edges symbolically ("e3",
// "a'", ...).  Parallel edges and self-loop-free arbitrary topologies are
// supported; self-loops are rejected (a route may not revisit a node).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "aqt/core/types.hpp"

namespace aqt {

/// Immutable-after-build directed multigraph with named nodes and edges.
class Graph {
 public:
  struct Edge {
    NodeId tail;
    NodeId head;
    std::string name;
  };

  Graph() = default;

  /// Adds a node; names must be unique and non-empty.
  NodeId add_node(std::string name);

  /// Adds a directed edge tail->head; names must be unique and non-empty.
  EdgeId add_edge(NodeId tail, NodeId head, std::string name);

  /// Adds an edge between named nodes, creating the nodes if absent.
  EdgeId add_edge(const std::string& tail_name, const std::string& head_name,
                  std::string edge_name);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const;
  [[nodiscard]] const std::string& node_name(NodeId v) const;

  [[nodiscard]] NodeId tail(EdgeId e) const { return edge(e).tail; }
  [[nodiscard]] NodeId head(EdgeId e) const { return edge(e).head; }

  [[nodiscard]] const std::vector<EdgeId>& out_edges(NodeId v) const;
  [[nodiscard]] const std::vector<EdgeId>& in_edges(NodeId v) const;

  /// Looks up ids by name; nullopt if absent.
  [[nodiscard]] std::optional<NodeId> find_node(std::string_view name) const;
  [[nodiscard]] std::optional<EdgeId> find_edge(std::string_view name) const;

  /// Like find_edge but hard-fails with a message; for construction code.
  [[nodiscard]] EdgeId edge_by_name(std::string_view name) const;

  /// True iff `route` is non-empty and consecutive edges are contiguous
  /// (head of route[i] == tail of route[i+1]).
  [[nodiscard]] bool is_path(const Route& route) const;

  /// True iff `route` is a *simple* directed path: contiguous and no node is
  /// visited twice (paper §2 requires simple routes).
  [[nodiscard]] bool is_simple_path(const Route& route) const;

  /// Maximum in-degree over nodes (the alpha of Diaz et al.'s bound).
  [[nodiscard]] std::size_t max_in_degree() const;

  /// Graphviz DOT rendering (edges labelled with their names).
  [[nodiscard]] std::string to_dot(const std::string& graph_name = "G") const;

 private:
  std::vector<std::string> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
  std::unordered_map<std::string, NodeId> node_by_name_;
  std::unordered_map<std::string, EdgeId> edge_by_name_;
};

}  // namespace aqt
