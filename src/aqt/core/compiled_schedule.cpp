#include "aqt/core/compiled_schedule.hpp"

#include "aqt/util/check.hpp"

namespace aqt {

void CompiledSchedule::reset(Time first) {
  first_ = first;
  steps_.clear();
  injections_.clear();
  reroutes_.clear();
}

void CompiledSchedule::begin_step(bool finished_before) {
  StepSpan s;
  s.inj_begin = s.inj_end = static_cast<std::uint32_t>(injections_.size());
  s.rr_begin = s.rr_end = static_cast<std::uint32_t>(reroutes_.size());
  s.finished_before = finished_before;
  steps_.push_back(s);
}

CompiledSchedule::StepView CompiledSchedule::step(Time t) const {
  AQT_CHECK(covers(t), "step " << t << " outside compiled block ["
                               << first_ << ", "
                               << first_ + static_cast<Time>(steps_.size())
                               << ")");
  const StepSpan& s = steps_[static_cast<std::size_t>(t - first_)];
  StepView view;
  view.injections = {injections_.data() + s.inj_begin,
                     injections_.data() + s.inj_end};
  view.reroutes = {reroutes_.data() + s.rr_begin,
                   reroutes_.data() + s.rr_end};
  view.finished_before = s.finished_before;
  return view;
}

}  // namespace aqt
