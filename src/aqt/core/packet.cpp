#include "aqt/core/packet.hpp"

namespace aqt {

PacketId PacketArena::allocate_slot() {
  if (!free_.empty()) {
    const PacketId id = free_.back();
    free_.pop_back();
    ++recycled_;
    return id;
  }
  const PacketId id = static_cast<PacketId>(hot_.size());
  hot_.emplace_back();
  meta_.emplace_back();
  return id;
}

PacketId PacketArena::create(RouteRef route, Time inject_time,
                             std::uint64_t tag) {
  const PacketId id = allocate_slot();
  Packet& p = hot_[id];
  p.route = route;
  p.hop = 0;
  p.inject_time = inject_time;
  p.arrival_time = inject_time;
  p.arrival_seq = 0;
  PacketMeta& m = meta_[id];
  m.tag = tag;
  m.ordinal = created_;
  ++m.generation;
  m.alive = true;
  ++live_;
  ++created_;
  return id;
}

void PacketArena::destroy(PacketId id) {
  AQT_CHECK(is_live(id), "destroying dead packet " << id);
  meta_[id].alive = false;
  hot_[id].route = RouteRef{};  // Interned storage stays in the RouteTable.
  free_.push_back(id);
  --live_;
}

PacketId PacketArena::find_by_ordinal(std::uint64_t ordinal) const {
  for (std::size_t i = 0; i < meta_.size(); ++i)
    if (meta_[i].alive && meta_[i].ordinal == ordinal)
      return static_cast<PacketId>(i);
  return kNoPacket;
}

PacketId PacketArena::restore(const Packet& hot, std::uint64_t ordinal,
                              std::uint64_t tag) {
  AQT_REQUIRE(find_by_ordinal(ordinal) == kNoPacket,
              "duplicate ordinal in restore: " << ordinal);
  const PacketId id = allocate_slot();
  hot_[id] = hot;
  PacketMeta& m = meta_[id];
  m.tag = tag;
  m.ordinal = ordinal;
  ++m.generation;
  m.alive = true;
  ++live_;
  return id;
}

}  // namespace aqt
