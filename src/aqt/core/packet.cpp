#include "aqt/core/packet.hpp"

namespace aqt {

PacketId PacketArena::create(Route route, Time inject_time,
                             std::uint64_t tag) {
  PacketId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<PacketId>(slots_.size());
    slots_.emplace_back();
  }
  Packet& p = slots_[id];
  const std::uint32_t gen = p.generation + 1;
  p = Packet{};
  p.route = std::move(route);
  p.inject_time = inject_time;
  p.arrival_time = inject_time;
  p.tag = tag;
  p.ordinal = created_;
  p.generation = gen;
  p.alive = true;
  by_ordinal_.emplace(p.ordinal, id);
  ++live_;
  ++created_;
  return id;
}

void PacketArena::destroy(PacketId id) {
  AQT_CHECK(is_live(id), "destroying dead packet " << id);
  Packet& p = slots_[id];
  p.alive = false;
  p.route.clear();
  p.route.shrink_to_fit();
  by_ordinal_.erase(p.ordinal);
  free_.push_back(id);
  --live_;
}

PacketId PacketArena::find_by_ordinal(std::uint64_t ordinal) const {
  auto it = by_ordinal_.find(ordinal);
  return it == by_ordinal_.end() ? kNoPacket : it->second;
}

PacketId PacketArena::restore(Packet p) {
  AQT_REQUIRE(p.alive, "restore of dead packet");
  AQT_REQUIRE(!by_ordinal_.count(p.ordinal),
              "duplicate ordinal in restore: " << p.ordinal);
  PacketId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<PacketId>(slots_.size());
    slots_.emplace_back();
  }
  p.generation = slots_[id].generation + 1;
  by_ordinal_.emplace(p.ordinal, id);
  slots_[id] = std::move(p);
  ++live_;
  return id;
}

}  // namespace aqt
