#include "aqt/core/reroute_legality.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "aqt/core/engine.hpp"
#include "aqt/util/check.hpp"

namespace aqt {

RerouteLegalityChecker::RerouteLegalityChecker(const Graph& graph, Rat rate)
    : graph_(graph), rate_(rate), last_use_(graph.edge_count(), kNever) {
  AQT_REQUIRE(rate.num() > 0, "legality checker needs a positive rate");
}

void RerouteLegalityChecker::on_injection(Time t, const Route& route) {
  for (EdgeId e : route) last_use_[e] = std::max(last_use_[e], t);
}

RerouteLegalityReport RerouteLegalityChecker::check_and_apply(
    Time now, const Engine& engine, const std::vector<Reroute>& batch) {
  RerouteLegalityReport rep;
  if (batch.empty()) return rep;

  // (b) All packets in the batch share a common edge on their current
  // effective routes.
  std::unordered_map<EdgeId, std::size_t> edge_count;
  for (const Reroute& rr : batch) {
    const Packet& p = engine.packet(rr.packet);
    std::unordered_set<EdgeId> dedup(p.route.begin(), p.route.end());
    // aqt-audit: allow(AUD002) -- per-edge count increments commute
    for (EdgeId e : dedup) ++edge_count[e];
  }
  const bool common =
      // aqt-audit: allow(AUD002) -- existence check, order-insensitive
      std::any_of(edge_count.begin(), edge_count.end(),
                  [&](const auto& kv) { return kv.second == batch.size(); });
  if (!common) {
    rep.ok = false;
    std::ostringstream os;
    os << "reroute batch at t=" << now << " has no common edge across its "
       << batch.size() << " packets (Lemma 3.3 hypothesis)";
    rep.reason = os.str();
    return rep;
  }

  // t* = earliest injection time among all packets in the network.
  Time t_star = std::numeric_limits<Time>::max();
  engine.arena().for_each_live([&](PacketId, const Packet& p,
                                   const PacketMeta&) {
    t_star = std::min(t_star, p.inject_time);
  });
  AQT_CHECK(t_star != std::numeric_limits<Time>::max(),
            "reroute with no live packets");
  const Time cutoff = t_star - (Rat(1) / rate_).ceil();

  // (c) Every *added* suffix edge is new to P(t): no injection at time >=
  // cutoff placed it on a route.  Edges the packet's current route already
  // contains are exempt — the paper's part-(1) extensions keep the old
  // remainder (e_{i+1}..e_n, a') and only the appended edges must satisfy
  // Definition 3.2, since retained edges add no load the original adversary
  // had not already declared.
  for (const Reroute& rr : batch) {
    const Packet& pk = engine.packet(rr.packet);
    const std::unordered_set<EdgeId> retained(pk.route.begin(),
                                              pk.route.end());
    for (EdgeId e : rr.new_suffix) {
      if (retained.count(e)) continue;
      if (last_use_[e] != kNever && last_use_[e] >= cutoff) {
        rep.ok = false;
        std::ostringstream os;
        os << "edge " << graph_.edge(e).name << " is not new at t=" << now
           << ": last used by an injection at t=" << last_use_[e]
           << " >= cutoff t* - ceil(1/r) = " << cutoff
           << " (Definition 3.2)";
        rep.reason = os.str();
        return rep;
      }
    }
  }

  // Account: the rerouted packets' effective routes now include the added
  // suffix edges, charged at their original injection times.
  for (const Reroute& rr : batch) {
    const Packet& pk = engine.packet(rr.packet);
    const std::unordered_set<EdgeId> retained(pk.route.begin(),
                                              pk.route.end());
    for (EdgeId e : rr.new_suffix) {
      if (retained.count(e)) continue;
      last_use_[e] = std::max(last_use_[e], pk.inject_time);
    }
  }
  return rep;
}

LegalityCheckedAdversary::LegalityCheckedAdversary(
    Adversary& inner, RerouteLegalityChecker& checker)
    : inner_(inner), checker_(checker) {}

void LegalityCheckedAdversary::step(Time now, const Engine& engine,
                                    AdversaryStep& out) {
  const std::size_t inj_before = out.injections.size();
  const std::size_t rr_before = out.reroutes.size();
  inner_.step(now, engine, out);
  const std::vector<Reroute> batch(
      out.reroutes.begin() + static_cast<std::ptrdiff_t>(rr_before),
      out.reroutes.end());
  const auto rep = checker_.check_and_apply(now, engine, batch);
  if (!rep.ok && all_legal_) {
    all_legal_ = false;
    first_violation_ = rep.reason;
  }
  for (std::size_t i = inj_before; i < out.injections.size(); ++i)
    checker_.on_injection(now, out.injections[i].route);
}

bool LegalityCheckedAdversary::finished(Time now) const {
  return inner_.finished(now);
}

}  // namespace aqt
