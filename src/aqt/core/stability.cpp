#include "aqt/core/stability.hpp"

#include <algorithm>
#include <cmath>

namespace aqt {

const char* to_string(GrowthVerdict v) {
  switch (v) {
    case GrowthVerdict::kBounded:
      return "bounded";
    case GrowthVerdict::kGrowing:
      return "growing";
    case GrowthVerdict::kUndecided:
      return "undecided";
  }
  return "?";
}

GrowthReport classify_growth(const std::vector<std::uint64_t>& samples,
                             double slack) {
  GrowthReport rep;
  if (samples.size() < 6) return rep;
  const std::size_t third = samples.size() / 3;
  double early = 0.0;
  double late = 0.0;
  for (std::size_t i = 0; i < third; ++i)
    early += static_cast<double>(samples[i]);
  for (std::size_t i = samples.size() - third; i < samples.size(); ++i)
    late += static_cast<double>(samples[i]);
  early /= static_cast<double>(third);
  late /= static_cast<double>(third);
  rep.early_mean = early;
  rep.late_mean = late;
  rep.ratio = late / std::max(early, 1.0);
  if (rep.ratio >= slack) {
    rep.verdict = GrowthVerdict::kGrowing;
  } else if (rep.ratio <= 1.0 + (slack - 1.0) * 0.25) {
    rep.verdict = GrowthVerdict::kBounded;
  }
  return rep;
}

GrowthReport classify_growth(const std::vector<SeriesPoint>& series,
                             double slack) {
  std::vector<std::uint64_t> samples;
  samples.reserve(series.size());
  for (const auto& p : series) samples.push_back(p.in_flight);
  return classify_growth(samples, slack);
}

double geometric_growth_factor(const std::vector<std::uint64_t>& peaks) {
  if (peaks.size() < 2 || peaks.front() == 0) return 0.0;
  double log_sum = 0.0;
  std::size_t terms = 0;
  for (std::size_t i = 0; i + 1 < peaks.size(); ++i) {
    if (peaks[i] == 0 || peaks[i + 1] == 0) continue;
    log_sum += std::log(static_cast<double>(peaks[i + 1]) /
                        static_cast<double>(peaks[i]));
    ++terms;
  }
  if (terms == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(terms));
}

}  // namespace aqt
