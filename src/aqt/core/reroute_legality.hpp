// Machine-checking the hypotheses of the rerouting lemma (Lemma 3.3).
//
// The lemma licenses rewriting the route suffixes of a packet set P0 at
// time t provided:
//   (a) the policy is historic (Definition 3.1) — enforced by the engine;
//   (b) the current routes of all packets in P0 share at least one common
//       edge;
//   (c) every edge *added* by the new suffixes is *new* to P(t)
//       (Definition 3.2): not on the route of any packet injected at or
//       after t* - ceil(1/r), where t* is the earliest injection time among
//       packets currently in the network.  Edges the packet's route already
//       contained (the paper's extensions retain the old remainder
//       e_{i+1}..e_n, a') are exempt: they add no load beyond what the
//       original adversary declared.
//
// The engine checks only structural validity (contiguity, simplicity);
// this validator checks (b) and (c), so tests can assert that the LPS
// construction's reroutes are exactly the moves the lemma licenses.  It
// tracks, per edge, the latest injection time of any packet whose
// *effective route at injection* used the edge — which requires feeding it
// every injection and every reroute as they happen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aqt/core/adversary.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/types.hpp"
#include "aqt/util/rational.hpp"

namespace aqt {

class Engine;

/// Verdict for one batch of reroutes.
struct RerouteLegalityReport {
  bool ok = true;
  std::string reason;  ///< Human-readable failure description.
};

/// Tracks edge usage by injection time and validates reroute batches
/// against Lemma 3.3's hypotheses.
class RerouteLegalityChecker {
 public:
  RerouteLegalityChecker(const Graph& graph, Rat rate);

  /// Record an injection issued at step t with route `route`.
  void on_injection(Time t, const Route& route);

  /// Validate one batch of reroutes issued at step `now` against the
  /// current engine state, then account the new suffix edges as used (the
  /// rerouted packets' effective routes now include them, charged at the
  /// packets' injection times).
  RerouteLegalityReport check_and_apply(Time now, const Engine& engine,
                                        const std::vector<Reroute>& batch);

  /// Latest injection time recorded for edge e (kNoTime if never used).
  static constexpr Time kNever = -1;
  [[nodiscard]] Time last_use(EdgeId e) const { return last_use_[e]; }

 private:
  const Graph& graph_;
  Rat rate_;
  std::vector<Time> last_use_;
};

/// Convenience adversary decorator: forwards to an inner adversary, feeds
/// the checker, and records the first violation (if any).
class LegalityCheckedAdversary final : public Adversary {
 public:
  LegalityCheckedAdversary(Adversary& inner, RerouteLegalityChecker& checker);

  void step(Time now, const Engine& engine, AdversaryStep& out) override;
  [[nodiscard]] bool finished(Time now) const override;

  [[nodiscard]] bool all_legal() const { return all_legal_; }
  [[nodiscard]] const std::string& first_violation() const {
    return first_violation_;
  }

 private:
  Adversary& inner_;
  RerouteLegalityChecker& checker_;
  bool all_legal_ = true;
  std::string first_violation_;
};

}  // namespace aqt
