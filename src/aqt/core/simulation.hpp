// High-level simulation driver.
//
// Owns the graph, protocol, engine and adversary, and adds the conveniences
// examples and benches want: S-initial-configurations (paper §4), stop
// conditions, and a one-struct summary of a run.  Library code that needs
// tight control (the LPS adversary tests, for instance) uses Engine
// directly; this wrapper is sugar, not policy.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "aqt/core/engine.hpp"
#include "aqt/core/graph.hpp"
#include "aqt/core/protocol.hpp"

namespace aqt {

/// Summary of a finished (or paused) run.
struct RunSummary {
  Time steps = 0;
  std::uint64_t injected = 0;
  std::uint64_t absorbed = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t max_queue = 0;     ///< Largest buffer ever observed.
  Time max_residence = 0;          ///< Longest single-buffer wait observed.
  Time max_latency = 0;
  double mean_latency = 0.0;
  std::int64_t p99_latency = 0;  ///< 99th percentile (log-bucket bound).
};

class Simulation {
 public:
  /// Takes ownership of the graph and protocol.
  Simulation(Graph graph, std::unique_ptr<Protocol> protocol,
             EngineConfig config = {});

  /// Convenience: protocol by name (see make_protocol).
  Simulation(Graph graph, const std::string& protocol_name,
             EngineConfig config = {});

  /// Places `count` packets with route `route` in the initial
  /// configuration.  Typically used with single-edge routes, matching the
  /// paper's S-initial-configuration and the Theorem 3.17 start state.
  void add_initial_queue(const Route& route, std::size_t count,
                         std::uint64_t tag = 0);

  /// Sets the adversary (owned).  May be reset between runs.
  void set_adversary(std::unique_ptr<Adversary> adversary);

  /// Runs exactly `steps` steps.
  void run_for(Time steps);

  /// Runs until the adversary reports finished(), a predicate fires, or the
  /// step cap is hit, whichever is first.  The predicate may be empty.
  void run_until(const std::function<bool(const Engine&)>& stop, Time cap);

  [[nodiscard]] RunSummary summary() const;

  [[nodiscard]] Engine& engine() { return *engine_; }
  [[nodiscard]] const Engine& engine() const { return *engine_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const Protocol& protocol() const { return *protocol_; }
  [[nodiscard]] Adversary* adversary() { return adversary_.get(); }

 private:
  Graph graph_;
  std::unique_ptr<Protocol> protocol_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Adversary> adversary_;
};

}  // namespace aqt
