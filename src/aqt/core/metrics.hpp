// Run metrics: queue growth, residence times, latency, time series.
//
// The stability question (paper §1) is "is there a bound on the size of the
// link buffers?", and the stability theorems of §4 bound the time a packet
// spends in any single buffer by ceil(w*r).  Metrics therefore track, per
// edge and globally: maximum queue size, maximum buffer residence, plus
// totals, distributions (queue depth, residence, latency), per-step system
// occupancy, and an optionally subsampled time series.  The obs layer
// (aqt/obs) turns this into a named MetricRegistry for export.
//
// Empty-denominator convention (shared with util/stats and util/histogram):
// every mean/ratio accessor returns exactly 0.0 — never NaN or Inf — when
// nothing has been observed, so exporters and downstream arithmetic need no
// special-casing and machine-readable output stays finite.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "aqt/core/types.hpp"
#include "aqt/util/histogram.hpp"

namespace aqt {

/// One subsampled time-series point.
struct SeriesPoint {
  Time t;
  std::uint64_t in_flight;   ///< Live packets anywhere in the network.
  std::uint64_t max_queue;   ///< Largest single buffer at time t.
};

class Metrics {
 public:
  explicit Metrics(std::size_t edge_count);

  // The four observe_* calls below run ~20x per engine step combined; they
  // are defined inline so the step loop pays only the arithmetic, not call
  // overhead.

  /// Record that `count` packets sit in the buffer of `e` (end of step).
  void observe_queue(EdgeId e, std::size_t count) {
    const auto c = static_cast<std::uint64_t>(count);
    if (c > max_queue_[e]) max_queue_[e] = c;
    if (c > max_queue_g_) max_queue_g_ = c;
    queue_hist_.add(static_cast<std::int64_t>(count));
  }

  /// Record a send: the packet waited `residence` steps in e's buffer.
  void observe_send(EdgeId e, Time residence) {
    ++sends_;
    ++sends_per_edge_[e];
    if (residence > max_res_[e]) max_res_[e] = residence;
    if (residence > max_res_g_) max_res_g_ = residence;
    residence_hist_.add(residence);
  }

  /// Record an absorption with end-to-end latency.
  void observe_absorb(Time latency) {
    ++absorbed_;
    latency_sum_ += static_cast<std::uint64_t>(latency);
    if (latency > max_latency_) max_latency_ = latency;
    latency_hist_.add(latency);
  }

  /// Record the end of one engine step with `in_flight` live packets — the
  /// per-step occupancy feed for window-occupancy statistics.
  void observe_step(std::uint64_t in_flight) {
    ++steps_;
    occupancy_sum_ += in_flight;
    if (in_flight > occupancy_peak_) occupancy_peak_ = in_flight;
  }

  /// Append a time series point (caller controls sampling cadence).
  void push_series(Time t, std::uint64_t in_flight, std::uint64_t max_queue);

  [[nodiscard]] std::uint64_t max_queue(EdgeId e) const {
    return max_queue_[e];
  }
  [[nodiscard]] std::uint64_t max_queue_global() const { return max_queue_g_; }
  [[nodiscard]] Time max_residence(EdgeId e) const { return max_res_[e]; }
  [[nodiscard]] Time max_residence_global() const { return max_res_g_; }
  [[nodiscard]] std::uint64_t sends() const { return sends_; }
  /// Packets that crossed edge e so far.
  [[nodiscard]] std::uint64_t sends(EdgeId e) const {
    return sends_per_edge_[e];
  }
  [[nodiscard]] std::uint64_t absorbed() const { return absorbed_; }
  [[nodiscard]] Time max_latency() const { return max_latency_; }
  [[nodiscard]] double mean_latency() const {
    return absorbed_ == 0
               ? 0.0
               : static_cast<double>(latency_sum_) / static_cast<double>(absorbed_);
  }
  /// End-to-end latency distribution (log buckets).
  [[nodiscard]] const Histogram& latency_histogram() const {
    return latency_hist_;
  }
  /// Distribution of end-of-step nonempty-buffer depths (log buckets).
  [[nodiscard]] const Histogram& queue_depth_histogram() const {
    return queue_hist_;
  }
  /// Distribution of single-buffer residence times over all sends.
  [[nodiscard]] const Histogram& residence_histogram() const {
    return residence_hist_;
  }

  /// Steps observed via observe_step (the engine calls it once per step).
  [[nodiscard]] std::uint64_t steps_observed() const { return steps_; }
  /// Mean per-step system occupancy (live packets); 0 before any step.
  [[nodiscard]] double mean_occupancy() const {
    return steps_ == 0 ? 0.0
                       : static_cast<double>(occupancy_sum_) /
                             static_cast<double>(steps_);
  }
  /// Largest per-step system occupancy observed; 0 before any step.
  [[nodiscard]] std::uint64_t peak_occupancy() const {
    return occupancy_peak_;
  }

  [[nodiscard]] const std::vector<SeriesPoint>& series() const {
    return series_;
  }

  /// Checkpoint plumbing: serialize / restore all counters and the series.
  void save(std::ostream& os) const;
  void load(std::istream& is);

 private:
  std::vector<std::uint64_t> max_queue_;
  std::vector<Time> max_res_;
  std::vector<std::uint64_t> sends_per_edge_;
  std::uint64_t max_queue_g_ = 0;
  Time max_res_g_ = 0;
  std::uint64_t sends_ = 0;
  std::uint64_t absorbed_ = 0;
  Time max_latency_ = 0;
  std::uint64_t latency_sum_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t occupancy_sum_ = 0;
  std::uint64_t occupancy_peak_ = 0;
  Histogram latency_hist_;
  Histogram queue_hist_;
  Histogram residence_hist_;
  std::vector<SeriesPoint> series_;
};

}  // namespace aqt
