#include "aqt/core/protocol.hpp"

#include "aqt/util/check.hpp"

namespace aqt {

LambdaProtocol::LambdaProtocol(std::string name, bool historic,
                               bool time_priority, KeyFn key)
    : name_(std::move(name)),
      historic_(historic),
      time_priority_(time_priority),
      key_(std::move(key)) {
  AQT_REQUIRE(!name_.empty(), "protocol name must be non-empty");
  AQT_REQUIRE(key_ != nullptr, "protocol needs a key function");
}

std::unique_ptr<Protocol> make_protocol(std::string_view name,
                                        std::uint64_t seed) {
  if (name == "FIFO") return std::make_unique<FifoProtocol>();
  if (name == "LIFO") return std::make_unique<LifoProtocol>();
  if (name == "LIS") return std::make_unique<LisProtocol>();
  if (name == "NIS" || name == "SIS") return std::make_unique<NisProtocol>();
  if (name == "FTG") return std::make_unique<FtgProtocol>();
  if (name == "NTG") return std::make_unique<NtgProtocol>();
  if (name == "FFS") return std::make_unique<FfsProtocol>();
  if (name == "NTS") return std::make_unique<NtsProtocol>();
  if (name == "RANDOM") return std::make_unique<RandomProtocol>(seed);
  AQT_REQUIRE(false, "unknown protocol: " << name);
}

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> names = {
      "FIFO", "LIFO", "LIS", "NIS", "FTG", "NTG", "FFS", "NTS", "RANDOM"};
  return names;
}

}  // namespace aqt
