#include "aqt/core/metrics.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "aqt/util/check.hpp"

namespace aqt {

Metrics::Metrics(std::size_t edge_count)
    : max_queue_(edge_count, 0),
      max_res_(edge_count, 0),
      sends_per_edge_(edge_count, 0) {}

void Metrics::push_series(Time t, std::uint64_t in_flight,
                          std::uint64_t max_queue) {
  series_.push_back(SeriesPoint{t, in_flight, max_queue});
}

void Metrics::save(std::ostream& os) const {
  os << "metrics " << max_queue_.size() << ' ' << max_queue_g_ << ' '
     << max_res_g_ << ' ' << sends_ << ' ' << absorbed_ << ' '
     << max_latency_ << ' ' << latency_sum_ << ' ' << steps_ << ' '
     << occupancy_sum_ << ' ' << occupancy_peak_ << '\n';
  for (std::size_t e = 0; e < max_queue_.size(); ++e) {
    if (max_queue_[e] == 0 && max_res_[e] == 0 && sends_per_edge_[e] == 0)
      continue;
    os << "mq " << e << ' ' << max_queue_[e] << ' ' << max_res_[e] << ' '
       << sends_per_edge_[e] << '\n';
  }
  // Three histogram sections in fixed order: latency, queue depth,
  // residence (checkpoint format version 2).
  latency_hist_.save(os);
  queue_hist_.save(os);
  residence_hist_.save(os);
  os << "series " << series_.size() << '\n';
  for (const SeriesPoint& p : series_)
    os << p.t << ' ' << p.in_flight << ' ' << p.max_queue << '\n';
}

void Metrics::load(std::istream& is) {
  std::string word;
  std::size_t edges = 0;
  is >> word >> edges >> max_queue_g_ >> max_res_g_ >> sends_ >> absorbed_ >>
      max_latency_ >> latency_sum_ >> steps_ >> occupancy_sum_ >>
      occupancy_peak_;
  AQT_REQUIRE(is && word == "metrics", "malformed metrics section");
  AQT_REQUIRE(edges == max_queue_.size(),
              "metrics edge count mismatch: checkpoint has "
                  << edges << ", graph has " << max_queue_.size());
  while (is >> word && word == "mq") {
    std::size_t e = 0;
    is >> e;
    AQT_REQUIRE(is && e < edges, "bad metrics edge index");
    is >> max_queue_[e] >> max_res_[e] >> sends_per_edge_[e];
  }
  // The mq loop stops on the first non-"mq" word, which is the first
  // histogram tag; its body and the two further sections follow.
  AQT_REQUIRE(is && word == "hist", "missing histogram section");
  latency_hist_.load_body(is);
  queue_hist_.load(is);
  residence_hist_.load(is);
  is >> word;
  AQT_REQUIRE(is && word == "series", "missing series section");
  std::size_t count = 0;
  is >> count;
  series_.resize(count);
  for (SeriesPoint& p : series_) is >> p.t >> p.in_flight >> p.max_queue;
  AQT_REQUIRE(static_cast<bool>(is), "truncated metrics series");
}

}  // namespace aqt
