// Adversary interface (paper §2, Definition 2.1 and the rate-r adversary).
//
// The adversary is invoked once per time step, during the second substep,
// *after* in-transit packets have been delivered.  It may read the whole
// simulation state (the paper's adversaries are adaptive in presentation —
// ours re-parameterize phases from measured queue sizes) and returns two
// kinds of work:
//   * injections — new packets with full routes (placed in the buffer of the
//     first route edge this same step), and
//   * reroutes  — suffix replacements for in-flight packets, the Lemma 3.3
//     technique.  The engine validates contiguity and (for safety) that the
//     active protocol is historic.
//
// Whether the adversary respects its rate constraint is *checked*, not
// assumed: see rate_check.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/core/types.hpp"

namespace aqt {

class Engine;

/// A packet to inject this step.
struct Injection {
  Route route;
  std::uint64_t tag = 0;
};

/// Replace everything after packet's current (next) edge with `new_suffix`.
/// An empty suffix truncates the route at the current edge.
struct Reroute {
  PacketId packet;
  Route new_suffix;
};

/// Per-step work emitted by an adversary.
struct AdversaryStep {
  std::vector<Injection> injections;
  std::vector<Reroute> reroutes;
};

/// Base class for all adversaries.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Produce this step's work.  `now` is the current step (first call: 1).
  /// `engine` exposes read-only state.
  virtual void step(Time now, const Engine& engine, AdversaryStep& out) = 0;

  /// True once the adversary has finished its script (used by drivers to
  /// stop runs early).  Unbounded adversaries never finish.
  [[nodiscard]] virtual bool finished(Time /*now*/) const { return false; }

  /// True when step() never reads the engine argument — the adversary's
  /// output is a pure function of `now` and its own internal state.  Such
  /// adversaries can be *precompiled*: Engine::run polls them for a whole
  /// block of future steps up front, lowering their work into a flat
  /// CompiledSchedule, and then executes the block without a single virtual
  /// call or AdversaryStep allocation on the hot path.  Adaptive
  /// adversaries (anything that inspects queues or resolves packet ids)
  /// must keep the default and stay on the per-step polled path.
  [[nodiscard]] virtual bool is_oblivious() const { return false; }
};

/// The trivial adversary: injects nothing, ever.
class NullAdversary final : public Adversary {
 public:
  void step(Time, const Engine&, AdversaryStep&) override {}
  [[nodiscard]] bool finished(Time) const override { return true; }
  [[nodiscard]] bool is_oblivious() const override { return true; }
};

}  // namespace aqt
