// Simulation checkpointing: persist a running engine's complete state and
// resume it later in a fresh process.
//
// A checkpoint captures the clock, all live packets (with their effective
// routes, positions, and scheduling keys), buffer contents, and the
// aggregate metrics — everything observable.  It does NOT capture:
//   * the adversary (adversaries are code; re-construct and fast-forward,
//     or use a Trace for data-driven schedules);
//   * the rate audit (disable auditing for checkpointed runs).
//
// Restored runs are behaviourally identical to the original continuing:
// packet ids may differ (slot assignment is an implementation detail), but
// ordinals, arrival sequence numbers, and buffer orderings are preserved
// exactly, and those are the only identities the engine's semantics use.
//
// Format: a versioned line-oriented text format; edges are referenced by
// id (the checkpoint is tied to an identically-built graph, which is
// verified via an edge-count and name checksum).
#pragma once

#include <iosfwd>
#include <string>

namespace aqt {

class Engine;

/// Writes `engine`'s full state.  Requires rate auditing to be disabled.
void save_checkpoint(const Engine& engine, std::ostream& os);
void save_checkpoint_file(const Engine& engine, const std::string& path);

/// Restores state into a freshly constructed engine (same graph, same
/// protocol, no packets, never stepped).  Throws PreconditionError on
/// format errors or graph mismatch.
void load_checkpoint(Engine& engine, std::istream& is);
void load_checkpoint_file(Engine& engine, const std::string& path);

}  // namespace aqt
